//! IPv4-style network packets and their wire format.
//!
//! The simulator moves [`IpPacket`]s between nodes. Packets carry a real
//! byte payload so that transport protocols serialise their headers exactly
//! as they would on the wire, and so that IP-in-IP tunnelling (used by the
//! HydraNet redirectors) can encapsulate a full packet as the payload of
//! another.

use std::fmt;
use std::str::FromStr;

use crate::buf::PacketBuf;

/// An IPv4-style network address.
///
/// # Examples
///
/// ```
/// use hydranet_netsim::packet::IpAddr;
///
/// let a: IpAddr = "192.20.225.20".parse().unwrap();
/// assert_eq!(a.to_string(), "192.20.225.20");
/// assert_eq!(a.octets(), [192, 20, 225, 20]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IpAddr(u32);

impl fmt::Debug for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Dotted quad in debug output too: raw u32s are unreadable in
        // assertion failures and traces.
        fmt::Display::fmt(self, f)
    }
}

impl IpAddr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: IpAddr = IpAddr(0);

    /// Creates an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Creates an address from its 32-bit big-endian numeric value.
    pub const fn from_bits(bits: u32) -> Self {
        IpAddr(bits)
    }

    /// The 32-bit big-endian numeric value of this address.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// The four dotted-quad octets of this address.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Whether this is the unspecified address `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error returned when parsing an [`IpAddr`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpAddrError {
    input: String,
}

impl fmt::Display for ParseIpAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IP address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseIpAddrError {}

impl FromStr for IpAddr {
    type Err = ParseIpAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseIpAddrError {
            input: s.to_owned(),
        };
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            *octet = part.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(IpAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

impl From<[u8; 4]> for IpAddr {
    fn from(octets: [u8; 4]) -> Self {
        IpAddr::new(octets[0], octets[1], octets[2], octets[3])
    }
}

/// An IP protocol number, as carried in the IP header's protocol field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Protocol(u8);

impl Protocol {
    /// IP-in-IP encapsulation (protocol 4), used by redirector tunnels.
    pub const IP_IN_IP: Protocol = Protocol(4);
    /// TCP (protocol 6).
    pub const TCP: Protocol = Protocol(6);
    /// UDP (protocol 17).
    pub const UDP: Protocol = Protocol(17);
    /// Route announcement flooded by a promoted redirector so routers flip
    /// their anycast next hop to the survivor (protocol 89, OSPF's number).
    pub const ROUTE_ANNOUNCE: Protocol = Protocol(89);

    /// Creates a protocol from its raw number.
    pub const fn from_number(n: u8) -> Self {
        Protocol(n)
    }

    /// The raw protocol number.
    pub const fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Protocol::IP_IN_IP => write!(f, "ipip"),
            Protocol::TCP => write!(f, "tcp"),
            Protocol::UDP => write!(f, "udp"),
            Protocol(n) => write!(f, "proto({n})"),
        }
    }
}

/// Size in bytes of the (option-less) IP header this simulator models.
pub const IP_HEADER_LEN: usize = 20;

/// Fragmentation-related control bits and offset for a packet.
///
/// `offset` is in bytes (the simulator does not require 8-byte alignment,
/// but [`fragment_packet`](crate::frag::fragment_packet) produces 8-byte
/// aligned fragments as real IP does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FragInfo {
    /// Byte offset of this fragment's payload within the original datagram.
    pub offset: u32,
    /// "More fragments" flag: set on every fragment except the last.
    pub more_fragments: bool,
    /// "Don't fragment" flag.
    pub dont_fragment: bool,
}

impl FragInfo {
    /// Fragment info for an unfragmented packet.
    pub const UNFRAGMENTED: FragInfo = FragInfo {
        offset: 0,
        more_fragments: false,
        dont_fragment: false,
    };

    /// Whether this packet is a fragment (or the head of a fragment train).
    pub const fn is_fragment(self) -> bool {
        self.offset != 0 || self.more_fragments
    }
}

/// The header of a simulated IP packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IpHeader {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport (or tunnel) protocol of the payload.
    pub protocol: Protocol,
    /// Remaining hop count; routers decrement and drop at zero.
    pub ttl: u8,
    /// Datagram identification, used to correlate fragments.
    pub id: u16,
    /// Fragmentation state.
    pub frag: FragInfo,
}

/// Default initial TTL for newly created packets.
pub const DEFAULT_TTL: u8 = 64;

/// A simulated IP packet: header plus raw payload bytes.
///
/// # Examples
///
/// ```
/// use hydranet_netsim::packet::{IpAddr, IpPacket, Protocol};
///
/// let p = IpPacket::new(
///     IpAddr::new(10, 0, 0, 1),
///     IpAddr::new(10, 0, 0, 2),
///     Protocol::UDP,
///     vec![1, 2, 3],
/// );
/// assert_eq!(p.total_len(), 20 + 3);
/// let bytes = p.encode();
/// let q = IpPacket::decode(&bytes).unwrap();
/// assert_eq!(p, q);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IpPacket {
    /// The IP header.
    pub header: IpHeader,
    /// Transport payload (or an encoded inner packet for IP-in-IP), held in
    /// a shared buffer so clones and decoded views never copy the bytes.
    pub payload: PacketBuf,
}

impl IpPacket {
    /// Creates a packet with default TTL and no fragmentation.
    pub fn new(
        src: IpAddr,
        dst: IpAddr,
        protocol: Protocol,
        payload: impl Into<PacketBuf>,
    ) -> Self {
        IpPacket {
            header: IpHeader {
                src,
                dst,
                protocol,
                ttl: DEFAULT_TTL,
                id: 0,
                frag: FragInfo::UNFRAGMENTED,
            },
            payload: payload.into(),
        }
    }

    /// Total on-wire size in bytes: header plus payload.
    pub fn total_len(&self) -> usize {
        IP_HEADER_LEN + self.payload.len()
    }

    /// Source address (header shorthand).
    pub fn src(&self) -> IpAddr {
        self.header.src
    }

    /// Destination address (header shorthand).
    pub fn dst(&self) -> IpAddr {
        self.header.dst
    }

    /// Protocol (header shorthand).
    pub fn protocol(&self) -> Protocol {
        self.header.protocol
    }

    /// Serialises the packet to bytes (20-byte header + payload).
    ///
    /// Layout (big-endian, 20 bytes total):
    /// `ver/ihl (1) | ttl (1) | protocol (1) | flags (1) | total_len (2) |
    ///  id (2) | frag_offset (4) | src (4) | dst (4)`.
    ///
    /// This is a simulator-native layout, not RFC 791's bit-exact one: it
    /// keeps a 32-bit byte-granular fragment offset so oversized simulated
    /// MTUs work, while preserving the real 20-byte header cost.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds 65515 bytes (the length field is 16
    /// bits, as in real IPv4).
    pub fn encode(&self) -> PacketBuf {
        // The encoded buffer carries the payload's lineage tag forward so a
        // packet's wire image stays linked to the send that produced it.
        PacketBuf::from(self.encode_vec()).with_lineage(self.payload.lineage())
    }

    /// [`encode`](Self::encode) into a plain `Vec` (one header-plus-payload
    /// write; the shared-buffer conversion above is free).
    fn encode_vec(&self) -> Vec<u8> {
        let total = self.total_len();
        assert!(
            total <= u16::MAX as usize,
            "packet too large to encode: {total} bytes"
        );
        let mut out = Vec::with_capacity(total);
        out.push(0x45);
        out.push(self.header.ttl);
        out.push(self.header.protocol.number());
        let mut flags = 0u8;
        if self.header.frag.more_fragments {
            flags |= 0x01;
        }
        if self.header.frag.dont_fragment {
            flags |= 0x02;
        }
        out.push(flags);
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.header.id.to_be_bytes());
        out.extend_from_slice(&self.header.frag.offset.to_be_bytes());
        out.extend_from_slice(&self.header.src.to_bits().to_be_bytes());
        out.extend_from_slice(&self.header.dst.to_bits().to_be_bytes());
        out.extend_from_slice(&self.payload);
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Parses a packet previously produced by [`encode`](Self::encode).
    ///
    /// The decoded payload is an O(1) slice of `buf`'s backing store — no
    /// bytes are copied. Use [`decode_slice`](Self::decode_slice) when only
    /// a borrowed `&[u8]` is available.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the buffer is shorter than a header, the
    /// version nibble is wrong, or the length field disagrees with the
    /// buffer.
    pub fn decode(buf: &PacketBuf) -> Result<Self, DecodeError> {
        let (header, total_len) = Self::decode_header(buf)?;
        Ok(IpPacket {
            header,
            payload: buf.slice(IP_HEADER_LEN..total_len),
        })
    }

    /// Parses a packet from borrowed bytes, copying the payload into a
    /// fresh buffer (the copying fallback to [`decode`](Self::decode)).
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Self::decode).
    pub fn decode_slice(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (header, total_len) = Self::decode_header(bytes)?;
        Ok(IpPacket {
            header,
            payload: PacketBuf::from(&bytes[IP_HEADER_LEN..total_len]),
        })
    }

    /// Parses the 20-byte header, returning it with the validated total
    /// length.
    fn decode_header(bytes: &[u8]) -> Result<(IpHeader, usize), DecodeError> {
        if bytes.len() < IP_HEADER_LEN {
            return Err(DecodeError::Truncated {
                needed: IP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[0] != 0x45 {
            return Err(DecodeError::BadVersion(bytes[0]));
        }
        let ttl = bytes[1];
        let protocol = Protocol::from_number(bytes[2]);
        let flags = bytes[3];
        let total_len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if total_len < IP_HEADER_LEN || total_len > bytes.len() {
            return Err(DecodeError::BadLength {
                declared: total_len,
                available: bytes.len(),
            });
        }
        let id = u16::from_be_bytes([bytes[6], bytes[7]]);
        let offset = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let src = IpAddr::from_bits(u32::from_be_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15],
        ]));
        let dst = IpAddr::from_bits(u32::from_be_bytes([
            bytes[16], bytes[17], bytes[18], bytes[19],
        ]));
        Ok((
            IpHeader {
                src,
                dst,
                protocol,
                ttl,
                id,
                frag: FragInfo {
                    offset,
                    more_fragments: flags & 0x01 != 0,
                    dont_fragment: flags & 0x02 != 0,
                },
            },
            total_len,
        ))
    }
}

/// Error returned when decoding a packet or header from bytes fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the structure being decoded.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The version/IHL byte was not the expected `0x45`.
    BadVersion(u8),
    /// The declared length is inconsistent with the available bytes.
    BadLength {
        /// Length declared in the header.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A transport checksum did not match — the payload was corrupted in
    /// flight. Distinct from [`BadLength`](DecodeError::BadLength) so
    /// receivers can count corruption separately from malformed framing.
    BadChecksum {
        /// Checksum carried in the header.
        declared: u16,
        /// Checksum computed over the received bytes.
        actual: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            DecodeError::BadVersion(v) => write!(f, "unexpected version byte {v:#04x}"),
            DecodeError::BadLength {
                declared,
                available,
            } => {
                write!(
                    f,
                    "bad length field: declared {declared}, available {available}"
                )
            }
            DecodeError::BadChecksum { declared, actual } => {
                write!(
                    f,
                    "checksum mismatch: declared {declared:#06x}, computed {actual:#06x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IpPacket {
        let mut p = IpPacket::new(
            IpAddr::new(192, 20, 225, 20),
            IpAddr::new(128, 142, 222, 80),
            Protocol::TCP,
            b"hello world".to_vec(),
        );
        p.header.id = 0xBEEF;
        p.header.ttl = 17;
        p.header.frag = FragInfo {
            offset: 4096,
            more_fragments: true,
            dont_fragment: false,
        };
        p
    }

    #[test]
    fn addr_display_and_parse_roundtrip() {
        let a = IpAddr::new(10, 1, 2, 3);
        let s = a.to_string();
        assert_eq!(s, "10.1.2.3");
        assert_eq!(s.parse::<IpAddr>().unwrap(), a);
    }

    #[test]
    fn addr_parse_rejects_garbage() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.4.5".parse::<IpAddr>().is_err());
        assert!("1.2.3.x".parse::<IpAddr>().is_err());
        assert!("256.1.1.1".parse::<IpAddr>().is_err());
        assert!("".parse::<IpAddr>().is_err());
    }

    #[test]
    fn addr_bits_roundtrip() {
        let a = IpAddr::new(1, 2, 3, 4);
        assert_eq!(IpAddr::from_bits(a.to_bits()), a);
        assert_eq!(a.octets(), [1, 2, 3, 4]);
        assert!(IpAddr::UNSPECIFIED.is_unspecified());
        assert!(!a.is_unspecified());
    }

    #[test]
    fn protocol_constants() {
        assert_eq!(Protocol::TCP.number(), 6);
        assert_eq!(Protocol::UDP.number(), 17);
        assert_eq!(Protocol::IP_IN_IP.number(), 4);
        assert_eq!(Protocol::TCP.to_string(), "tcp");
        assert_eq!(Protocol::from_number(99).to_string(), "proto(99)");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let bytes = p.encode();
        let q = IpPacket::decode(&bytes).unwrap();
        assert_eq!(p, q);
        // The decoded payload is a view of the encoded buffer, not a copy.
        assert!(crate::buf::PacketBuf::same_backing(&bytes, &q.payload));
        assert_eq!(IpPacket::decode_slice(&bytes).unwrap(), p);
    }

    #[test]
    fn encode_decode_empty_payload() {
        let p = IpPacket::new(
            IpAddr::new(1, 1, 1, 1),
            IpAddr::new(2, 2, 2, 2),
            Protocol::UDP,
            vec![],
        );
        let q = IpPacket::decode(&p.encode()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn decode_rejects_truncated() {
        let err = IpPacket::decode_slice(&[0u8; 4]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] = 0x60;
        assert!(matches!(
            IpPacket::decode_slice(&bytes),
            Err(DecodeError::BadVersion(0x60))
        ));
    }

    #[test]
    fn decode_rejects_bad_length() {
        let mut bytes = sample().encode().to_vec();
        // Declare a length longer than the buffer.
        let huge = (bytes.len() as u32 + 100).to_be_bytes();
        bytes[4..8].copy_from_slice(&huge);
        assert!(matches!(
            IpPacket::decode_slice(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn frag_info_flags_roundtrip() {
        for (mf, df) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut p = sample();
            p.header.frag.more_fragments = mf;
            p.header.frag.dont_fragment = df;
            let q = IpPacket::decode(&p.encode()).unwrap();
            assert_eq!(q.header.frag.more_fragments, mf);
            assert_eq!(q.header.frag.dont_fragment, df);
        }
    }

    #[test]
    fn is_fragment() {
        assert!(!FragInfo::UNFRAGMENTED.is_fragment());
        assert!(FragInfo {
            offset: 8,
            more_fragments: false,
            dont_fragment: false
        }
        .is_fragment());
        assert!(FragInfo {
            offset: 0,
            more_fragments: true,
            dont_fragment: false
        }
        .is_fragment());
    }

    #[test]
    fn lineage_survives_encode_and_decode() {
        let mut p = sample();
        p.payload.set_lineage(42);
        let bytes = p.encode();
        assert_eq!(bytes.lineage(), 42);
        // Decode views slice the encoded buffer, so the tag rides along.
        let q = IpPacket::decode(&bytes).unwrap();
        assert_eq!(q.payload.lineage(), 42);
        // The tag is metadata: wire bytes are identical to the untagged encode.
        assert_eq!(bytes, sample().encode());
    }

    #[test]
    fn total_len_counts_header() {
        let p = IpPacket::new(
            IpAddr::UNSPECIFIED,
            IpAddr::UNSPECIFIED,
            Protocol::TCP,
            vec![0; 100],
        );
        assert_eq!(p.total_len(), 120);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::rng::SimRng;

    /// Any packet round-trips through the wire format (deterministic
    /// randomized sweep, formerly a proptest property).
    #[test]
    fn packet_roundtrip() {
        let mut rng = SimRng::seed_from(0x9ac7e7);
        for _ in 0..256 {
            let len = rng.range(0, 2048) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let mut p = IpPacket::new(
                IpAddr::from_bits(rng.next_u64() as u32),
                IpAddr::from_bits(rng.next_u64() as u32),
                Protocol::from_number(rng.next_u64() as u8),
                payload,
            );
            p.header.ttl = rng.next_u64() as u8;
            p.header.id = rng.next_u64() as u16;
            p.header.frag = FragInfo {
                offset: rng.next_u64() as u32,
                more_fragments: rng.chance(0.5),
                dont_fragment: rng.chance(0.5),
            };
            assert_eq!(IpPacket::decode(&p.encode()).unwrap(), p);
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics() {
        let mut rng = SimRng::seed_from(0xdec0de);
        for _ in 0..512 {
            let len = rng.range(0, 128) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = IpPacket::decode_slice(&bytes);
        }
    }
}
