//! Hierarchical timing-wheel event calendar.
//!
//! The simulator's hot loop is "pop earliest event, process, push a few
//! near-future events". A binary heap does `O(log n)` sift work per
//! operation on a calendar that routinely holds tens of thousands of
//! timers; a hashed hierarchical timing wheel does `O(1)` placement per
//! push and amortised `O(1)` per pop, paying only an occasional cascade
//! when the cursor crosses a coarser slot boundary (Varghese & Lauck's
//! scheme, as used by kernel timer subsystems).
//!
//! Determinism contract: the wheel pops entries in exactly the same total
//! order as a heap — ascending `(time, seq)`, where `seq` is the
//! insertion sequence number assigned by the owner. Slots bucket entries
//! by a 4096 ns tick; within a slot entries are sorted by `(time, seq)`
//! before popping, so sub-tick ordering and FIFO tie-breaks are preserved
//! bit-for-bit. Timer cancellation lives above the calendar (the
//! simulator's tombstone set, the TCP stack's armed-deadline check) and
//! is backend-agnostic.
//!
//! The wheel is generic over its payload so it serves two masters: the
//! simulator's [`EventQueue`] files whole events (`P = EventKind`), and
//! each [`TcpStack`] files per-connection timer references (`P` = a
//! generation-checked slab index), sharing the cascade and lap-accounting
//! logic rather than reimplementing it.
//!
//! [`EventQueue`]: crate::event — the queue wraps either backend; pick one
//! per simulator with [`crate::sim::Simulator::set_calendar`].
//!
//! [`TcpStack`]: the TCP crate's per-host stack (downstream of this one).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hydranet_obs::metrics::Counter;
use hydranet_obs::Obs;

use crate::time::SimTime;

/// Which data structure backs the simulator's event calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalendarKind {
    /// Deterministic binary min-heap (the original calendar).
    Heap,
    /// Hierarchical timing wheel with the heap as far-future overflow.
    Wheel,
}

/// One entry filed in the wheel: a deadline, the owner-assigned insertion
/// sequence number that breaks same-time ties FIFO, and an arbitrary
/// payload the wheel never inspects.
#[derive(Debug)]
pub struct TimerEntry<P> {
    /// When the entry fires.
    pub time: SimTime,
    /// Owner-assigned insertion sequence; FIFO tie-break at equal times.
    pub seq: u64,
    /// Opaque payload returned on pop.
    pub payload: P,
}

impl<P> PartialEq for TimerEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<P> Eq for TimerEntry<P> {}

impl<P> PartialOrd for TimerEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for TimerEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Tick granularity: `1 << TICK_BITS` nanoseconds (4.096 µs). Everything
/// scheduled within one tick is ordered by an in-slot sort, so the tick
/// size trades slot-occupancy against sort length — link delays and CPU
/// costs in this simulator are tens of microseconds, so a 4 µs tick keeps
/// most events in distinct slots.
const TICK_BITS: u32 = 12;
/// Slots per level: `1 << SLOT_BITS`.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels. Level `L` spans `64^(L+1)` ticks: 262 µs, 16.8 ms,
/// 1.07 s, 68.7 s.
const LEVELS: usize = 4;
/// Ticks covered by all levels together; anything further out goes to the
/// overflow heap.
const SPAN_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Debug)]
struct Slot<P> {
    /// Entries in this slot, sorted descending by `(time, seq)` when
    /// `sorted` — the minimum pops from the back.
    events: Vec<TimerEntry<P>>,
    sorted: bool,
}

impl<P> Default for Slot<P> {
    fn default() -> Self {
        Slot {
            events: Vec::new(),
            sorted: false,
        }
    }
}

/// The wheel proper. All entries arrive with their `seq` already
/// assigned, and cascades re-file entries without touching it.
#[derive(Debug)]
pub struct TimingWheel<P> {
    levels: [[Slot<P>; SLOTS]; LEVELS],
    /// Per-level occupancy bitmap: bit `s` set iff slot `s` is non-empty.
    occupancy: [u64; LEVELS],
    /// Entries in the levels (excludes overflow).
    wheel_len: usize,
    /// Far-future entries (≥ `SPAN_TICKS` ticks ahead at push time). Never
    /// migrated into the wheel: the pop path compares the overflow head
    /// against the wheel minimum directly, which preserves the total order
    /// without re-filing work.
    overflow: BinaryHeap<TimerEntry<P>>,
    /// The wheel's clock, in ticks. Advances to the tick of every popped
    /// entry and to each cascaded window start; placement of a push is
    /// relative to it.
    now_tick: u64,
    c_cascades: Counter,
    c_overflow: Counter,
    c_sorts: Counter,
}

impl<P> Default for TimingWheel<P> {
    fn default() -> Self {
        TimingWheel {
            levels: std::array::from_fn(|_| std::array::from_fn(|_| Slot::default())),
            occupancy: [0; LEVELS],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            now_tick: 0,
            c_cascades: Counter::default(),
            c_overflow: Counter::default(),
            c_sorts: Counter::default(),
        }
    }
}

fn tick_of(time: SimTime) -> u64 {
    time.as_nanos() >> TICK_BITS
}

fn level_for(delta: u64) -> usize {
    debug_assert!(delta < SPAN_TICKS);
    if delta < 1 << SLOT_BITS {
        0
    } else if delta < 1 << (2 * SLOT_BITS) {
        1
    } else if delta < 1 << (3 * SLOT_BITS) {
        2
    } else {
        3
    }
}

impl<P> TimingWheel<P> {
    /// Wires the wheel's internal counters under the given metric prefix
    /// (`{prefix}.cascades` etc.) — the simulator calendar uses `wheel`,
    /// per-stack connection-timer wheels use their own namespace.
    pub fn set_obs_prefixed(&mut self, obs: &Obs, prefix: &str) {
        self.c_cascades = obs.counter(&format!("{prefix}.cascades"));
        self.c_overflow = obs.counter(&format!("{prefix}.overflow_pushes"));
        self.c_sorts = obs.counter(&format!("{prefix}.slot_sorts"));
    }

    /// Wires the wheel's counters under the default `wheel.*` namespace.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.set_obs_prefixed(obs, "wheel");
    }

    /// Total entries filed (levels plus overflow).
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when no entries are filed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Files an entry. An entry in the past relative to the wheel clock
    /// (possible only through [`pop_if_at_or_before`]'s push-back, or a
    /// caller scheduling behind the simulation clock) is placed at the
    /// current tick; its real `(time, seq)` still sorts it first in-slot.
    ///
    /// [`pop_if_at_or_before`]: TimingWheel::pop_if_at_or_before
    pub fn push(&mut self, ev: TimerEntry<P>) {
        let tick = tick_of(ev.time).max(self.now_tick);
        let delta = tick - self.now_tick;
        if delta >= SPAN_TICKS {
            self.c_overflow.inc();
            self.overflow.push(ev);
            return;
        }
        let mut lvl = level_for(delta);
        if lvl > 0 {
            let shift = SLOT_BITS * lvl as u32;
            if (tick >> shift) & SLOT_MASK == (self.now_tick >> shift) & SLOT_MASK {
                // A delta just under the level's full rotation can hash
                // into the cursor's own slot — a *next-lap* event, which
                // must not mix with the current lap the cascade logic
                // assumes. Park it one level up: there its slot is the
                // cursor's successor (the lap increment carries into the
                // next 6 bits), so the ambiguity cannot recur.
                lvl += 1;
                if lvl == LEVELS {
                    self.c_overflow.inc();
                    self.overflow.push(ev);
                    return;
                }
                let up = SLOT_BITS * lvl as u32;
                debug_assert_ne!((tick >> up) & SLOT_MASK, (self.now_tick >> up) & SLOT_MASK);
            }
        }
        let idx = ((tick >> (SLOT_BITS * lvl as u32)) & SLOT_MASK) as usize;
        let slot = &mut self.levels[lvl][idx];
        // An append keeps the descending order only when the new entry is
        // the new minimum; otherwise the slot sorts lazily on first pop.
        slot.sorted = match slot.events.last() {
            None => true,
            Some(back) => slot.sorted && (ev.time, ev.seq) < (back.time, back.seq),
        };
        slot.events.push(ev);
        self.occupancy[lvl] |= 1 << idx;
        self.wheel_len += 1;
    }

    /// Removes and returns the earliest entry by `(time, seq)`.
    pub fn pop(&mut self) -> Option<TimerEntry<P>> {
        if self.wheel_len == 0 {
            let ev = self.overflow.pop()?;
            self.now_tick = self.now_tick.max(tick_of(ev.time));
            return Some(ev);
        }
        if let Some(head) = self.overflow.peek() {
            let head_tick = tick_of(head.time);
            // Every wheel entry's tick is ≥ the bound, so a strictly
            // earlier overflow head wins without disturbing the wheel.
            if head_tick < self.min_tick_bound().unwrap() {
                let ev = self.overflow.pop().unwrap();
                self.now_tick = self.now_tick.max(head_tick);
                return Some(ev);
            }
            let w = self.pop_wheel().unwrap();
            if let Some(head) = self.overflow.peek() {
                if (head.time, head.seq) < (w.time, w.seq) {
                    let ev = self.overflow.pop().unwrap();
                    self.push(w);
                    return Some(ev);
                }
            }
            Some(w)
        } else {
            self.pop_wheel()
        }
    }

    /// Pops the earliest entry only if it is due at or before `deadline`.
    /// The common miss — next entry beyond the deadline — answers from the
    /// occupancy bitmaps alone, without cascading anything.
    ///
    /// Unlike [`pop`], a miss never advances the wheel clock past
    /// `deadline`'s tick: the bounded search refuses to cascade a window
    /// or visit a level-0 slot beyond it. This matters to callers whose
    /// clock is external (a TCP stack asked for timers due *now*, a
    /// simulator probing its calendar before more events are scheduled):
    /// if a miss probe dragged the clock to the next entry's future tick,
    /// any entry pushed afterwards with an earlier deadline would file
    /// behind the cursor and never be found due again.
    ///
    /// [`pop`]: TimingWheel::pop
    pub fn pop_if_at_or_before(&mut self, deadline: SimTime) -> Option<TimerEntry<P>> {
        let deadline_tick = tick_of(deadline);
        let ev = match self.pop_wheel_upto(Some(deadline_tick)) {
            Some(w) => {
                // The overflow head may still sort before the wheel's min;
                // its tick then also fits the bound, so the clock update
                // stays at or below `deadline_tick`.
                match self.overflow.peek() {
                    Some(h) if (h.time, h.seq) < (w.time, w.seq) => {
                        let ev = self.overflow.pop().unwrap();
                        self.push(w);
                        self.now_tick = self.now_tick.max(tick_of(ev.time));
                        ev
                    }
                    _ => w,
                }
            }
            None => {
                // Nothing due in the levels; every remaining wheel entry
                // sits beyond the deadline tick, so a due overflow head is
                // the global minimum.
                if self
                    .overflow
                    .peek()
                    .is_none_or(|h| tick_of(h.time) > deadline_tick)
                {
                    return None;
                }
                let ev = self.overflow.pop().unwrap();
                self.now_tick = self.now_tick.max(tick_of(ev.time));
                ev
            }
        };
        if ev.time > deadline {
            // Same tick, sub-tick deadline: put it back (seq preserved).
            self.push(ev);
            return None;
        }
        Some(ev)
    }

    /// A lower bound (in ticks) on every entry currently in the levels:
    /// the exact tick of the nearest occupied level-0 slot, and the window
    /// start of the nearest occupied slot per coarser level.
    fn min_tick_bound(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        if self.occupancy[0] != 0 {
            let cur = (self.now_tick & SLOT_MASK) as u32;
            let d = self.occupancy[0].rotate_right(cur).trailing_zeros() as u64;
            best = Some(self.now_tick + d);
        }
        for lvl in 1..LEVELS {
            if self.occupancy[lvl] == 0 {
                continue;
            }
            let ws = self.nearest_window(lvl).1;
            if best.is_none_or(|b| ws < b) {
                best = Some(ws);
            }
        }
        best
    }

    /// For a level with at least one occupied slot: the occupied slot
    /// nearest at or after the cursor, and the start tick of its window.
    ///
    /// Lap accounting: a slot strictly ahead of the cursor holds
    /// current-lap entries, a slot behind it (reached by wrapping) holds
    /// next-lap entries, and the cursor's own slot holds only entries of
    /// the window that is due right now — the push path diverts would-be
    /// next-lap occupants of the cursor slot one level up, so the three
    /// cases are disjoint.
    fn nearest_window(&self, lvl: usize) -> (usize, u64) {
        let shift = SLOT_BITS * lvl as u32;
        let cur = ((self.now_tick >> shift) & SLOT_MASK) as u32;
        let d = self.occupancy[lvl].rotate_right(cur).trailing_zeros();
        let idx = ((cur + d) as u64 & SLOT_MASK) as usize;
        let lap = 1u64 << (shift + SLOT_BITS);
        let mut ws = (self.now_tick & !(lap - 1)) + ((idx as u64) << shift);
        if cur + d >= SLOTS as u32 {
            ws += lap; // wrapped past the cursor: next lap
        }
        (idx, ws)
    }

    /// Pops the earliest entry from the levels. Cascades any coarse slot
    /// whose window opens at or before the nearest level-0 candidate —
    /// `≤`, not `<`, because a coarse slot's entries may share the
    /// candidate's tick with smaller `(time, seq)`.
    fn pop_wheel(&mut self) -> Option<TimerEntry<P>> {
        self.pop_wheel_upto(None)
    }

    /// Pops the earliest entry from the levels, refusing — when `cap` is
    /// set — to advance the clock (cascade a window, visit a level-0 slot)
    /// beyond tick `cap`. A `None` return with `cap` set means every
    /// remaining entry sits beyond it, and the clock stayed at or below
    /// it.
    fn pop_wheel_upto(&mut self, cap: Option<u64>) -> Option<TimerEntry<P>> {
        if self.wheel_len == 0 {
            return None;
        }
        // One find-min needs at most one cascade per occupied coarse slot
        // (each cascade strictly lowers its entries), so iterations are
        // bounded by the slot count. The cap turns a would-be infinite
        // cascade cycle (a lap-accounting bug) into a loud failure.
        let mut iters = 0u32;
        loop {
            iters += 1;
            assert!(
                iters <= 4 * (LEVELS * SLOTS) as u32,
                "cascade cycle: now_tick={} occ={:?} wheel_len={}",
                self.now_tick,
                self.occupancy,
                self.wheel_len
            );
            let l0_tick = if self.occupancy[0] != 0 {
                let cur = (self.now_tick & SLOT_MASK) as u32;
                let d = self.occupancy[0].rotate_right(cur).trailing_zeros() as u64;
                Some(self.now_tick + d)
            } else {
                None
            };
            let mut coarse: Option<(usize, usize, u64)> = None;
            for lvl in 1..LEVELS {
                if self.occupancy[lvl] == 0 {
                    continue;
                }
                let (idx, ws) = self.nearest_window(lvl);
                if coarse.is_none_or(|(_, _, best)| ws < best) {
                    coarse = Some((lvl, idx, ws));
                }
            }
            // The nearest candidate position bounds every entry's tick
            // from below, so once it exceeds the cap nothing due remains.
            let nearest = match (l0_tick, coarse) {
                (Some(t), Some((_, _, ws))) => t.min(ws),
                (Some(t), None) => t,
                (None, Some((_, _, ws))) => ws,
                (None, None) => unreachable!("wheel_len > 0 with empty occupancy"),
            };
            if cap.is_some_and(|c| nearest > c) {
                return None;
            }
            match (l0_tick, coarse) {
                (Some(t), Some((lvl, idx, ws))) if ws <= t => self.cascade(lvl, idx, ws),
                (Some(t), _) => return Some(self.pop_level0(t)),
                (None, Some((lvl, idx, ws))) => self.cascade(lvl, idx, ws),
                (None, None) => unreachable!("wheel_len > 0 with empty occupancy"),
            }
        }
    }

    /// Re-files every entry of one coarse slot, advancing the clock to the
    /// window start first so each lands at a strictly lower level (entries
    /// of a level-`L` slot sit within `64^L` ticks of their window start).
    fn cascade(&mut self, lvl: usize, idx: usize, window_start: u64) {
        debug_assert!(lvl > 0);
        self.c_cascades.inc();
        self.now_tick = self.now_tick.max(window_start);
        let events = std::mem::take(&mut self.levels[lvl][idx].events);
        self.occupancy[lvl] &= !(1 << idx);
        self.wheel_len -= events.len();
        for ev in events {
            debug_assert!(tick_of(ev.time).max(self.now_tick) - self.now_tick < SPAN_TICKS);
            self.push(ev);
        }
    }

    fn pop_level0(&mut self, tick: u64) -> TimerEntry<P> {
        self.now_tick = tick;
        let idx = (tick & SLOT_MASK) as usize;
        if !self.levels[0][idx].sorted {
            self.c_sorts.inc();
            let slot = &mut self.levels[0][idx];
            slot.events
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
            slot.sorted = true;
        }
        let slot = &mut self.levels[0][idx];
        let ev = slot.events.pop().expect("occupied level-0 slot");
        if slot.events.is_empty() {
            self.occupancy[0] &= !(1 << idx);
        }
        self.wheel_len -= 1;
        ev
    }

    #[cfg(test)]
    fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    #[cfg(test)]
    fn occupancy_at(&self, lvl: usize) -> u64 {
        self.occupancy[lvl]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn ev(nanos: u64, seq: u64) -> TimerEntry<()> {
        TimerEntry {
            time: SimTime::from_nanos(nanos),
            seq,
            payload: (),
        }
    }

    fn drain(w: &mut TimingWheel<()>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop())
            .map(|e| (e.time.as_nanos(), e.seq))
            .collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::default();
        // Same tick, distinct nanos and seqs; distinct ticks; far slots.
        for (i, nanos) in [5_000u64, 4_097, 4_096, 1 << 20, 3, 1 << 13]
            .iter()
            .enumerate()
        {
            w.push(ev(*nanos, i as u64));
        }
        w.push(ev(3, 99)); // duplicate time, later seq
        let order = drain(&mut w);
        let mut expected = vec![
            (3, 4),
            (3, 99),
            (4_096, 2),
            (4_097, 1),
            (5_000, 0),
            (1 << 13, 5),
            (1 << 20, 3),
        ];
        expected.sort();
        assert_eq!(order, expected);
    }

    #[test]
    fn far_future_goes_to_overflow_and_still_orders() {
        let mut w = TimingWheel::default();
        let span_ns = SPAN_TICKS << TICK_BITS; // ≈ 68.7 s
        w.push(ev(span_ns + 10, 0));
        w.push(ev(5, 1));
        w.push(ev(span_ns * 3, 2));
        assert_eq!(w.overflow_len(), 2);
        assert_eq!(w.len(), 3);
        assert_eq!(
            drain(&mut w),
            vec![(5, 1), (span_ns + 10, 0), (span_ns * 3, 2)]
        );
    }

    #[test]
    fn deadline_miss_answers_without_cascading() {
        let mut w = TimingWheel::default();
        w.push(ev(1 << 30, 0)); // level-3 slot, ≈ 1 s out
        assert!(w
            .pop_if_at_or_before(SimTime::from_nanos(1 << 20))
            .is_none());
        // The event stayed at its coarse level: no cascade ran.
        assert_ne!(w.occupancy_at(3), 0);
        let got = w.pop_if_at_or_before(SimTime::from_nanos(1 << 30)).unwrap();
        assert_eq!(got.seq, 0);
    }

    #[test]
    fn sub_tick_deadline_pushes_back() {
        let mut w = TimingWheel::default();
        w.push(ev(100, 0)); // tick 0
        assert!(w.pop_if_at_or_before(SimTime::from_nanos(50)).is_none());
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop_if_at_or_before(SimTime::from_nanos(100)).unwrap().seq,
            0
        );
    }

    /// The determinism contract: any interleaving of pushes and pops
    /// produces the exact pop order of a reference heap.
    #[test]
    fn matches_heap_order_under_random_interleaving() {
        let mut rng = SimRng::seed_from(0x77EE1);
        for round in 0..20u64 {
            let mut wheel = TimingWheel::default();
            let mut heap: BinaryHeap<TimerEntry<()>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            for _ in 0..400 {
                if rng.range(0, 3) > 0 || heap.is_empty() {
                    // Mixed horizons: same-tick, near, mid, far, overflow.
                    let horizon = match rng.range(0, 5) {
                        0 => rng.range(0, 1 << 10),
                        1 => rng.range(0, 1 << 16),
                        2 => rng.range(0, 1 << 24),
                        3 => rng.range(0, 1 << 34),
                        _ => rng.range(0, (SPAN_TICKS << TICK_BITS) * 2),
                    };
                    let e = ev(now + horizon, seq);
                    seq += 1;
                    wheel.push(ev(e.time.as_nanos(), e.seq));
                    heap.push(e);
                } else {
                    let a = wheel.pop().unwrap();
                    let b = heap.pop().unwrap();
                    now = b.time.as_nanos();
                    popped.push((a.time.as_nanos(), a.seq));
                    expected.push((b.time.as_nanos(), b.seq));
                }
            }
            popped.extend(drain(&mut wheel));
            expected.extend(std::iter::from_fn(|| heap.pop()).map(|e| (e.time.as_nanos(), e.seq)));
            assert_eq!(popped, expected, "diverged in round {round}");
        }
    }

    /// Zero-delay self-posts while draining a slot must not starve or
    /// reorder: events pushed at the current tick pop in seq order.
    #[test]
    fn same_tick_push_during_drain() {
        let mut w = TimingWheel::default();
        w.push(ev(10, 0));
        w.push(ev(10, 1));
        assert_eq!(w.pop().unwrap().seq, 0);
        w.push(ev(11, 2)); // same tick 0, pushed mid-drain
        w.push(ev(9, 3)); // behind the clock: clamps to current tick
        assert_eq!(
            drain(&mut w),
            vec![(9, 3), (10, 1), (11, 2)],
            "in-slot sort must consider late pushes"
        );
    }
}
