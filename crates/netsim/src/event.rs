//! The simulator's event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::link::{Direction, Impairments, LinkId};
use crate::node::{NodeId, TimerId, TimerToken};
use crate::packet::IpPacket;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver `on_start` to a node.
    NodeStart(NodeId),
    /// A packet reaches a node's interface from a link (before CPU cost).
    PacketArrival {
        node: NodeId,
        iface: usize,
        packet: IpPacket,
    },
    /// A packet has finished its CPU processing delay and is handed to the
    /// node. Carries the node's crash epoch so work queued before a crash
    /// does not leak into a recovered node.
    PacketDispatch {
        node: NodeId,
        iface: usize,
        packet: IpPacket,
        epoch: u64,
    },
    /// The transmitter of one link direction is free to send the next
    /// packet. `epoch` invalidates events scheduled before a link outage.
    LinkDequeue {
        link: LinkId,
        dir: Direction,
        epoch: u64,
    },
    /// A node timer fires.
    Timer {
        node: NodeId,
        id: TimerId,
        token: TimerToken,
        epoch: u64,
    },
    /// Fail-stop a node.
    Crash(NodeId),
    /// Bring a crashed node back.
    Recover(NodeId),
    /// Take a link out of service (both directions).
    LinkDown(LinkId),
    /// Restore a link to service.
    LinkUp(LinkId),
    /// Replace a link's impairment set (both directions) at a scheduled
    /// time — the mechanism behind timed loss bursts and impairment
    /// windows in fault plans.
    SetImpairments { link: LinkId, imp: Impairments },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The sequence number breaks ties deterministically in FIFO
        // order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of events ordered by `(time, insertion order)`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Pops the earliest event only if it is due at or before `deadline` —
    /// one peek-and-pop instead of the separate `peek_time` + `pop` the
    /// `run_until` loop used to do per event (the heap's sift-down runs
    /// once either way, but the bounds check and branch happen on the
    /// already-fetched peek rather than re-entering the heap).
    pub fn pop_if_at_or_before(&mut self, deadline: SimTime) -> Option<Event> {
        if self.heap.peek()?.time > deadline {
            return None;
        }
        self.heap.pop()
    }

    #[cfg(test)]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(n: usize) -> EventKind {
        EventKind::NodeStart(NodeId(n))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), start(3));
        q.push(SimTime::from_millis(1), start(1));
        q.push(SimTime::from_millis(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(order, vec![1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(1), start(i));
        }
        let mut last_seq = None;
        while let Some(e) = q.pop() {
            if let Some(prev) = last_seq {
                assert!(e.seq > prev, "FIFO violated");
            }
            last_seq = Some(e.seq);
        }
    }

    #[test]
    fn pop_if_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        assert!(q.pop_if_at_or_before(SimTime::from_secs(1)).is_none());
        q.push(SimTime::from_millis(5), start(0));
        q.push(SimTime::from_millis(10), start(1));
        assert!(q.pop_if_at_or_before(SimTime::from_millis(4)).is_none());
        assert_eq!(q.len(), 2);
        let e = q.pop_if_at_or_before(SimTime::from_millis(5)).unwrap();
        assert_eq!(e.time, SimTime::from_millis(5));
        assert!(q.pop_if_at_or_before(SimTime::from_millis(9)).is_none());
        assert!(q.pop_if_at_or_before(SimTime::from_millis(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        q.push(SimTime::from_micros(7), start(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
