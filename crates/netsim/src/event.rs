//! The simulator's event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hydranet_obs::Obs;

use crate::link::{Direction, Impairments, LinkId};
use crate::node::{NodeId, TimerId, TimerToken};
use crate::packet::IpPacket;
use crate::time::SimTime;
use crate::wheel::{CalendarKind, TimerEntry, TimingWheel};

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver `on_start` to a node.
    NodeStart(NodeId),
    /// A packet reaches a node's interface from a link (before CPU cost).
    PacketArrival {
        node: NodeId,
        iface: usize,
        packet: IpPacket,
    },
    /// A packet has finished its CPU processing delay and is handed to the
    /// node. Carries the node's crash epoch so work queued before a crash
    /// does not leak into a recovered node.
    PacketDispatch {
        node: NodeId,
        iface: usize,
        packet: IpPacket,
        epoch: u64,
    },
    /// The transmitter of one link direction is free to send the next
    /// packet. `epoch` invalidates events scheduled before a link outage.
    LinkDequeue {
        link: LinkId,
        dir: Direction,
        epoch: u64,
    },
    /// A node timer fires.
    Timer {
        node: NodeId,
        id: TimerId,
        token: TimerToken,
        epoch: u64,
    },
    /// Fail-stop a node.
    Crash(NodeId),
    /// Bring a crashed node back.
    Recover(NodeId),
    /// Take a link out of service (both directions).
    LinkDown(LinkId),
    /// Restore a link to service.
    LinkUp(LinkId),
    /// Replace a link's impairment set (both directions) at a scheduled
    /// time — the mechanism behind timed loss bursts and impairment
    /// windows in fault plans.
    SetImpairments { link: LinkId, imp: Impairments },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The sequence number breaks ties deterministically in FIFO
        // order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The calendar's data structure: the original deterministic min-heap, or
/// the hierarchical timing wheel. Both pop in ascending `(time, seq)`
/// order; the choice affects only the constant factors.
#[derive(Debug)]
enum Backend {
    Heap(BinaryHeap<Event>),
    Wheel(Box<TimingWheel<EventKind>>),
}

fn to_entry(ev: Event) -> TimerEntry<EventKind> {
    TimerEntry {
        time: ev.time,
        seq: ev.seq,
        payload: ev.kind,
    }
}

fn from_entry(e: TimerEntry<EventKind>) -> Event {
    Event {
        time: e.time,
        seq: e.seq,
        kind: e.payload,
    }
}

/// A deterministic event calendar ordered by `(time, insertion order)`.
#[derive(Debug)]
pub(crate) struct EventQueue {
    backend: Backend,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_kind(CalendarKind::Wheel)
    }
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn with_kind(kind: CalendarKind) -> Self {
        let backend = match kind {
            CalendarKind::Heap => Backend::Heap(BinaryHeap::new()),
            CalendarKind::Wheel => Backend::Wheel(Box::default()),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    pub fn kind(&self) -> CalendarKind {
        match self.backend {
            Backend::Heap(_) => CalendarKind::Heap,
            Backend::Wheel(_) => CalendarKind::Wheel,
        }
    }

    /// Swaps the backing structure, preserving every pending event with
    /// its original sequence number — the pop order before and after the
    /// swap is identical, so a simulator can switch calendars at any
    /// point without perturbing the schedule.
    pub fn set_kind(&mut self, kind: CalendarKind) {
        if self.kind() == kind {
            return;
        }
        let mut drained = Vec::with_capacity(self.len());
        while let Some(ev) = self.pop() {
            drained.push(ev);
        }
        let next_seq = self.next_seq;
        *self = EventQueue::with_kind(kind);
        self.next_seq = next_seq;
        for ev in drained {
            self.push_event(ev);
        }
    }

    /// Wires the wheel's internals counters (`wheel.*`); a no-op for the
    /// heap backend.
    pub fn set_obs(&mut self, obs: &Obs) {
        if let Backend::Wheel(w) = &mut self.backend {
            w.set_obs(obs);
        }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_event(Event { time, seq, kind });
    }

    fn push_event(&mut self, ev: Event) {
        match &mut self.backend {
            Backend::Heap(h) => h.push(ev),
            Backend::Wheel(w) => w.push(to_entry(ev)),
        }
    }

    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop(),
            Backend::Wheel(w) => w.pop().map(from_entry),
        }
    }

    /// Pops the earliest event only if it is due at or before `deadline` —
    /// one peek-and-pop instead of the separate `peek_time` + `pop` the
    /// `run_until` loop used to do per event (the heap's sift-down runs
    /// once either way, but the bounds check and branch happen on the
    /// already-fetched peek rather than re-entering the heap). The wheel
    /// answers most misses from its occupancy bitmaps alone.
    pub fn pop_if_at_or_before(&mut self, deadline: SimTime) -> Option<Event> {
        match &mut self.backend {
            Backend::Heap(h) => {
                if h.peek()?.time > deadline {
                    return None;
                }
                h.pop()
            }
            Backend::Wheel(w) => w.pop_if_at_or_before(deadline).map(from_entry),
        }
    }

    #[cfg(test)]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let ev = self.pop()?;
        let time = ev.time;
        self.push_event(ev);
        Some(time)
    }

    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Wheel(w) => w.len(),
        }
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(n: usize) -> EventKind {
        EventKind::NodeStart(NodeId(n))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), start(3));
        q.push(SimTime::from_millis(1), start(1));
        q.push(SimTime::from_millis(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(order, vec![1_000_000, 2_000_000, 3_000_000]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(1), start(i));
        }
        let mut last_seq = None;
        while let Some(e) = q.pop() {
            if let Some(prev) = last_seq {
                assert!(e.seq > prev, "FIFO violated");
            }
            last_seq = Some(e.seq);
        }
    }

    #[test]
    fn pop_if_at_or_before_respects_deadline() {
        let mut q = EventQueue::new();
        assert!(q.pop_if_at_or_before(SimTime::from_secs(1)).is_none());
        q.push(SimTime::from_millis(5), start(0));
        q.push(SimTime::from_millis(10), start(1));
        assert!(q.pop_if_at_or_before(SimTime::from_millis(4)).is_none());
        assert_eq!(q.len(), 2);
        let e = q.pop_if_at_or_before(SimTime::from_millis(5)).unwrap();
        assert_eq!(e.time, SimTime::from_millis(5));
        assert!(q.pop_if_at_or_before(SimTime::from_millis(9)).is_none());
        assert!(q.pop_if_at_or_before(SimTime::from_millis(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn set_kind_preserves_pending_order() {
        for (from, to) in [
            (CalendarKind::Heap, CalendarKind::Wheel),
            (CalendarKind::Wheel, CalendarKind::Heap),
        ] {
            let mut q = EventQueue::with_kind(from);
            q.push(SimTime::from_millis(2), start(0));
            q.push(SimTime::from_millis(1), start(1));
            q.push(SimTime::from_millis(1), start(2));
            q.push(SimTime::from_secs(120), start(3)); // wheel overflow range
            let first = q.pop().unwrap();
            assert_eq!((first.time, first.seq), (SimTime::from_millis(1), 1));
            q.set_kind(to);
            assert_eq!(q.kind(), to);
            assert_eq!(q.len(), 3);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(order, vec![2, 0, 3]);
            // New pushes continue the sequence counter.
            q.push(SimTime::from_millis(9), start(9));
            assert_eq!(q.pop().unwrap().seq, 4);
        }
    }

    #[test]
    fn both_kinds_pop_identically() {
        let mut heap = EventQueue::with_kind(CalendarKind::Heap);
        let mut wheel = EventQueue::with_kind(CalendarKind::Wheel);
        let times = [7u64, 3, 3, 100_000, 7, 1, 99_000_000_000];
        for (i, t) in times.iter().enumerate() {
            heap.push(SimTime::from_micros(*t), start(i));
            wheel.push(SimTime::from_micros(*t), start(i));
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => assert_eq!((x.time, x.seq), (y.time, y.seq)),
                (a, b) => panic!("length mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        q.push(SimTime::from_micros(7), start(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
