//! Counters collected during a run.

/// Per-direction link counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Payload-carrying bytes delivered (on-wire sizes).
    pub bytes_delivered: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets dropped by the random loss model.
    pub dropped_loss: u64,
    /// Packets dropped because the link was down.
    pub dropped_down: u64,
    /// Packets dropped because they exceeded the MTU with DF set.
    pub dropped_mtu: u64,
    /// Delivered packets that were delivered a second time by the
    /// duplication impairment (counts extra copies, not originals).
    pub duplicated: u64,
    /// Delivered packets that had one payload bit flipped by the
    /// corruption impairment.
    pub corrupted: u64,
    /// Delivered packets held back by reordering jitter.
    pub reordered: u64,
}

impl LinkStats {
    /// Total drops from all causes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_queue + self.dropped_loss + self.dropped_down + self.dropped_mtu
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Packets dispatched to the node's handler.
    pub dispatched: u64,
    /// Packets discarded because the node was crashed.
    pub dropped_crashed: u64,
    /// Accumulated CPU busy time in nanoseconds.
    pub cpu_busy_nanos: u64,
}

/// Whole-simulation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Events processed by the run loop.
    pub events_processed: u64,
    /// Timers fired (after cancellation filtering).
    pub timers_fired: u64,
    /// Timers that were cancelled before firing.
    pub timers_cancelled: u64,
    /// Packet-trace entries evicted from the trace ring to make room for
    /// newer ones (0 when tracing is off or the ring never filled).
    pub trace_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_total_sums_causes() {
        let s = LinkStats {
            dropped_queue: 1,
            dropped_loss: 2,
            dropped_down: 3,
            dropped_mtu: 4,
            ..LinkStats::default()
        };
        assert_eq!(s.dropped_total(), 10);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(LinkStats::default().dropped_total(), 0);
        assert_eq!(NodeStats::default().dispatched, 0);
        assert_eq!(SimStats::default().events_processed, 0);
    }
}
