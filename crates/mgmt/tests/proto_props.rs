//! Property tests for the management protocol's wire format and the chain
//! role computation.

use hydranet_mgmt::chain::assignments;
use hydranet_mgmt::proto::{Envelope, MgmtMsg};
use hydranet_netsim::packet::IpAddr;
use hydranet_tcp::segment::SockAddr;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(IpAddr::from_bits)
}

fn arb_sockaddr() -> impl Strategy<Value = SockAddr> {
    (arb_addr(), any::<u16>()).prop_map(|(a, p)| SockAddr::new(a, p))
}

fn arb_msg() -> impl Strategy<Value = MgmtMsg> {
    prop_oneof![
        (arb_sockaddr(), arb_addr())
            .prop_map(|(service, host)| MgmtMsg::RegisterReplica { service, host }),
        (arb_sockaddr(), arb_addr()).prop_map(|(service, host)| MgmtMsg::Deregister {
            service,
            host
        }),
        (arb_sockaddr(), arb_addr(), any::<u64>()).prop_map(|(service, reporter, observed)| {
            MgmtMsg::FailureReport {
                service,
                reporter,
                observed,
            }
        }),
        (
            arb_sockaddr(),
            any::<u32>(),
            proptest::option::of(arb_addr()),
            any::<bool>()
        )
            .prop_map(|(service, index, predecessor, has_successor)| MgmtMsg::SetRole {
                service,
                index,
                predecessor,
                has_successor,
            }),
        any::<u64>().prop_map(|nonce| MgmtMsg::Probe { nonce }),
        any::<u64>().prop_map(|nonce| MgmtMsg::ProbeAck { nonce }),
    ]
}

proptest! {
    /// Every message round-trips through the envelope wire format.
    #[test]
    fn envelope_roundtrip(id: u64, needs_ack: bool, msg in arb_msg()) {
        let env = Envelope::Payload { id, needs_ack, msg };
        prop_assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    /// Acks round-trip too.
    #[test]
    fn ack_roundtrip(of: u64) {
        let env = Envelope::Ack { of };
        prop_assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Envelope::decode(&bytes);
    }

    /// Truncating a valid envelope anywhere yields an error, not garbage.
    #[test]
    fn truncation_is_detected(id: u64, msg in arb_msg(), cut in 1usize..20) {
        let bytes = Envelope::Payload { id, needs_ack: true, msg }.encode();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(Envelope::decode(truncated).is_err());
        }
    }

    /// Chain role computation invariants, for any chain of distinct hosts:
    /// indices are sequential, the head is the ungated-predecessor primary,
    /// exactly the tail lacks a successor, and each predecessor is the
    /// previous chain member.
    #[test]
    fn chain_assignment_invariants(raw in proptest::collection::hash_set(any::<u32>(), 1..8)) {
        let chain: Vec<IpAddr> = raw.into_iter().map(IpAddr::from_bits).collect();
        let roles = assignments(&chain);
        prop_assert_eq!(roles.len(), chain.len());
        for (i, role) in roles.iter().enumerate() {
            prop_assert_eq!(role.host, chain[i]);
            prop_assert_eq!(role.index as usize, i);
            prop_assert_eq!(role.predecessor, if i == 0 { None } else { Some(chain[i - 1]) });
            prop_assert_eq!(role.has_successor, i + 1 < chain.len());
        }
        // Exactly one primary; exactly one tail.
        prop_assert_eq!(roles.iter().filter(|r| r.index == 0).count(), 1);
        prop_assert_eq!(roles.iter().filter(|r| !r.has_successor).count(), 1);
    }
}
