//! Randomized-sweep tests for the management protocol's wire format and
//! the chain role computation (formerly proptest properties; now driven by
//! the in-tree deterministic [`SimRng`]).

use std::collections::BTreeSet;

use hydranet_mgmt::chain::assignments;
use hydranet_mgmt::proto::{Envelope, MgmtMsg};
use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::rng::SimRng;
use hydranet_tcp::segment::SockAddr;

fn arb_addr(rng: &mut SimRng) -> IpAddr {
    IpAddr::from_bits(rng.next_u64() as u32)
}

fn arb_sockaddr(rng: &mut SimRng) -> SockAddr {
    SockAddr::new(arb_addr(rng), rng.next_u64() as u16)
}

fn arb_msg(rng: &mut SimRng) -> MgmtMsg {
    match rng.range(0, 6) {
        0 => MgmtMsg::RegisterReplica {
            service: arb_sockaddr(rng),
            host: arb_addr(rng),
        },
        1 => MgmtMsg::Deregister {
            service: arb_sockaddr(rng),
            host: arb_addr(rng),
        },
        2 => MgmtMsg::FailureReport {
            service: arb_sockaddr(rng),
            reporter: arb_addr(rng),
            observed: rng.next_u64(),
        },
        3 => MgmtMsg::SetRole {
            service: arb_sockaddr(rng),
            index: rng.next_u64() as u32,
            predecessor: if rng.chance(0.5) {
                Some(arb_addr(rng))
            } else {
                None
            },
            has_successor: rng.chance(0.5),
        },
        4 => MgmtMsg::Probe {
            nonce: rng.next_u64(),
        },
        _ => MgmtMsg::ProbeAck {
            nonce: rng.next_u64(),
        },
    }
}

/// Every message round-trips through the envelope wire format.
#[test]
fn envelope_roundtrip() {
    let mut rng = SimRng::seed_from(1);
    for _ in 0..512 {
        let env = Envelope::Payload {
            id: rng.next_u64(),
            needs_ack: rng.chance(0.5),
            msg: arb_msg(&mut rng),
        };
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }
}

/// Acks round-trip too.
#[test]
fn ack_roundtrip() {
    let mut rng = SimRng::seed_from(2);
    for _ in 0..128 {
        let env = Envelope::Ack { of: rng.next_u64() };
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }
}

/// Decoding arbitrary bytes never panics.
#[test]
fn decode_never_panics() {
    let mut rng = SimRng::seed_from(3);
    for _ in 0..512 {
        let len = rng.range(0, 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Envelope::decode(&bytes);
    }
}

/// Truncating a valid envelope anywhere yields an error, not garbage.
#[test]
fn truncation_is_detected() {
    let mut rng = SimRng::seed_from(4);
    for _ in 0..256 {
        let bytes = Envelope::Payload {
            id: rng.next_u64(),
            needs_ack: true,
            msg: arb_msg(&mut rng),
        }
        .encode();
        let cut = rng.range(1, 20) as usize;
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            assert!(Envelope::decode(truncated).is_err());
        }
    }
}

/// Chain role computation invariants, for any chain of distinct hosts:
/// indices are sequential, the head is the ungated-predecessor primary,
/// exactly the tail lacks a successor, and each predecessor is the
/// previous chain member.
#[test]
fn chain_assignment_invariants() {
    let mut rng = SimRng::seed_from(5);
    for _ in 0..256 {
        let n = rng.range(1, 8) as usize;
        let mut raw = BTreeSet::new();
        while raw.len() < n {
            raw.insert(rng.next_u64() as u32);
        }
        let chain: Vec<IpAddr> = raw.into_iter().map(IpAddr::from_bits).collect();
        let roles = assignments(&chain);
        assert_eq!(roles.len(), chain.len());
        for (i, role) in roles.iter().enumerate() {
            assert_eq!(role.host, chain[i]);
            assert_eq!(role.index as usize, i);
            assert_eq!(
                role.predecessor,
                if i == 0 { None } else { Some(chain[i - 1]) }
            );
            assert_eq!(role.has_successor, i + 1 < chain.len());
        }
        // Exactly one primary; exactly one tail.
        assert_eq!(roles.iter().filter(|r| r.index == 0).count(), 1);
        assert_eq!(roles.iter().filter(|r| !r.has_successor).count(), 1);
    }
}
