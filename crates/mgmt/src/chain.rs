//! Daisy-chain bookkeeping: compute every replica's role from the chain.

use hydranet_netsim::packet::IpAddr;
use hydranet_tcp::segment::SockAddr;

use crate::proto::MgmtMsg;

/// The role assignment for one chain position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleAssignment {
    /// The host this assignment is for.
    pub host: IpAddr,
    /// Chain index: 0 = primary.
    pub index: u32,
    /// Ack-channel predecessor.
    pub predecessor: Option<IpAddr>,
    /// Whether a successor exists.
    pub has_successor: bool,
}

impl RoleAssignment {
    /// The `SetRole` message conveying this assignment for `service`.
    pub fn to_msg(self, service: SockAddr) -> MgmtMsg {
        MgmtMsg::SetRole {
            service,
            index: self.index,
            predecessor: self.predecessor,
            has_successor: self.has_successor,
        }
    }
}

/// Computes the role of every host in `chain` (`chain[0]` is the primary;
/// each backup's ack-channel predecessor is the host ahead of it, §4.2).
pub fn assignments(chain: &[IpAddr]) -> Vec<RoleAssignment> {
    chain
        .iter()
        .enumerate()
        .map(|(i, &host)| RoleAssignment {
            host,
            index: i as u32,
            predecessor: (i > 0).then(|| chain[i - 1]),
            has_successor: i + 1 < chain.len(),
        })
        .collect()
}

/// A compact human-readable rendering of a chain for telemetry event
/// fields, e.g. `"10.0.1.1 -> 10.0.2.1"`.
pub fn describe(chain: &[IpAddr]) -> String {
    chain
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Which hosts' assignments differ between `old` and `new` chains — only
/// those need a `SetRole` message after a reconfiguration.
pub fn changed_assignments(old: &[IpAddr], new: &[IpAddr]) -> Vec<RoleAssignment> {
    let old_assignments = assignments(old);
    assignments(new)
        .into_iter()
        .filter(|a| !old_assignments.contains(a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u8) -> IpAddr {
        IpAddr::new(10, 0, n, 1)
    }

    #[test]
    fn three_node_chain_roles() {
        let chain = [h(1), h(2), h(3)];
        let roles = assignments(&chain);
        assert_eq!(roles.len(), 3);
        assert_eq!(
            roles[0],
            RoleAssignment {
                host: h(1),
                index: 0,
                predecessor: None,
                has_successor: true
            }
        );
        assert_eq!(
            roles[1],
            RoleAssignment {
                host: h(2),
                index: 1,
                predecessor: Some(h(1)),
                has_successor: true
            }
        );
        assert_eq!(
            roles[2],
            RoleAssignment {
                host: h(3),
                index: 2,
                predecessor: Some(h(2)),
                has_successor: false
            }
        );
    }

    #[test]
    fn sole_primary_is_ungated() {
        let roles = assignments(&[h(1)]);
        assert_eq!(roles.len(), 1);
        assert!(!roles[0].has_successor);
        assert!(roles[0].predecessor.is_none());
    }

    #[test]
    fn empty_chain_has_no_roles() {
        assert!(assignments(&[]).is_empty());
    }

    #[test]
    fn primary_failure_changes_everyone() {
        // h1 dies: h2 promotes (new predecessor None), h3's predecessor is
        // unchanged (h2) but stays last — h3's assignment is identical, so
        // only h2 needs a message.
        let changed = changed_assignments(&[h(1), h(2), h(3)], &[h(2), h(3)]);
        assert_eq!(changed.len(), 2); // h2's index and pred changed; h3's index changed
        assert!(changed.iter().any(|a| a.host == h(2) && a.index == 0));
        assert!(changed.iter().any(|a| a.host == h(3) && a.index == 1));
    }

    #[test]
    fn middle_failure_rechains_neighbours() {
        // h2 dies: h1 stays primary-with-successor (unchanged), h3 moves up
        // with a new predecessor.
        let changed = changed_assignments(&[h(1), h(2), h(3)], &[h(1), h(3)]);
        assert_eq!(changed.len(), 1);
        assert_eq!(
            changed[0],
            RoleAssignment {
                host: h(3),
                index: 1,
                predecessor: Some(h(1)),
                has_successor: false
            }
        );
    }

    #[test]
    fn last_backup_failure_ungates_predecessor() {
        let changed = changed_assignments(&[h(1), h(2), h(3)], &[h(1), h(2)]);
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].host, h(2));
        assert!(!changed[0].has_successor);
    }

    #[test]
    fn adding_backup_gates_former_tail() {
        let changed = changed_assignments(&[h(1)], &[h(1), h(2)]);
        assert_eq!(changed.len(), 2);
        assert!(changed.iter().any(|a| a.host == h(1) && a.has_successor));
        assert!(changed
            .iter()
            .any(|a| a.host == h(2) && a.predecessor == Some(h(1))));
    }

    #[test]
    fn set_role_message_mapping() {
        let service = SockAddr::new(IpAddr::new(192, 20, 225, 20), 80);
        let a = RoleAssignment {
            host: h(2),
            index: 1,
            predecessor: Some(h(1)),
            has_successor: false,
        };
        match a.to_msg(service) {
            MgmtMsg::SetRole {
                service: s,
                index,
                predecessor,
                has_successor,
            } => {
                assert_eq!(s, service);
                assert_eq!(index, 1);
                assert_eq!(predecessor, Some(h(1)));
                assert!(!has_successor);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
