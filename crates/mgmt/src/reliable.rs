//! "A form of reliable UDP" (§4.4): acknowledged, retransmitted,
//! duplicate-suppressed message exchange for the management daemons.

use std::collections::HashMap;

use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::time::{SimDuration, SimTime};

use crate::proto::{Envelope, MgmtMsg};

/// A datagram to hand to the transport: destination host and payload.
pub type Outgoing = (IpAddr, Vec<u8>);

/// Reliable-UDP endpoint state for one daemon.
#[derive(Debug)]
pub struct ReliableEndpoint {
    next_id: u64,
    retry_interval: SimDuration,
    max_attempts: u32,
    pending: Vec<Pending>,
    /// Recently seen `(peer, id)` pairs for duplicate suppression.
    seen: HashMap<(IpAddr, u64), SimTime>,
    seen_ttl: SimDuration,
    /// Reliable sends abandoned after `max_attempts` (diagnostics).
    abandoned: u64,
}

#[derive(Debug)]
struct Pending {
    id: u64,
    dst: IpAddr,
    bytes: Vec<u8>,
    next_retry: SimTime,
    attempts: u32,
}

/// Default retransmission interval.
pub const DEFAULT_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(250);

/// Default number of transmissions before a reliable send is abandoned.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 8;

impl ReliableEndpoint {
    /// Creates an endpoint with default retry parameters.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_RETRY_INTERVAL, DEFAULT_MAX_ATTEMPTS)
    }

    /// Sets the first message id this endpoint will use. A process that
    /// restarts must pick a fresh id space (e.g. derived from the restart
    /// time), or its peers' duplicate filters will swallow its messages.
    pub fn with_id_base(mut self, base: u64) -> Self {
        self.next_id = base.max(1);
        self
    }

    /// Creates an endpoint with the given retry interval and attempt limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_params(retry_interval: SimDuration, max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "max_attempts must be positive");
        ReliableEndpoint {
            next_id: 1,
            retry_interval,
            max_attempts,
            pending: Vec::new(),
            seen: HashMap::new(),
            seen_ttl: SimDuration::from_secs(120),
            abandoned: 0,
        }
    }

    /// Sends `msg` reliably to `dst`: it is retransmitted until acked.
    /// Returns the datagram to transmit now.
    pub fn send_reliable(&mut self, dst: IpAddr, msg: MgmtMsg, now: SimTime) -> Outgoing {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = Envelope::Payload {
            id,
            needs_ack: true,
            msg,
        }
        .encode();
        self.pending.push(Pending {
            id,
            dst,
            bytes: bytes.clone(),
            next_retry: now + self.retry_interval,
            attempts: 1,
        });
        (dst, bytes)
    }

    /// Sends `msg` best-effort (idempotent operations).
    pub fn send_unreliable(&mut self, dst: IpAddr, msg: MgmtMsg) -> Outgoing {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = Envelope::Payload {
            id,
            needs_ack: false,
            msg,
        }
        .encode();
        (dst, bytes)
    }

    /// Handles an incoming datagram from `src`.
    ///
    /// Returns the decoded message if it is a *new* payload (duplicates and
    /// acks return `None`), plus any ack datagrams to transmit.
    pub fn on_datagram(
        &mut self,
        src: IpAddr,
        bytes: &[u8],
        now: SimTime,
    ) -> (Option<MgmtMsg>, Vec<Outgoing>) {
        self.gc_seen(now);
        let Ok(env) = Envelope::decode(bytes) else {
            return (None, Vec::new());
        };
        match env {
            Envelope::Ack { of } => {
                self.pending.retain(|p| !(p.id == of && p.dst == src));
                (None, Vec::new())
            }
            Envelope::Payload { id, needs_ack, msg } => {
                let mut out = Vec::new();
                if needs_ack {
                    out.push((src, Envelope::Ack { of: id }.encode()));
                }
                let fresh = self.seen.insert((src, id), now).is_none();
                (fresh.then_some(msg), out)
            }
        }
    }

    /// Retransmits overdue reliable messages; drops those out of attempts.
    pub fn poll(&mut self, now: SimTime) -> Vec<Outgoing> {
        let mut out = Vec::new();
        let retry_interval = self.retry_interval;
        let max_attempts = self.max_attempts;
        let mut abandoned = 0;
        self.pending.retain_mut(|p| {
            if now < p.next_retry {
                return true;
            }
            if p.attempts >= max_attempts {
                abandoned += 1;
                return false;
            }
            p.attempts += 1;
            p.next_retry = now + retry_interval;
            out.push((p.dst, p.bytes.clone()));
            true
        });
        self.abandoned += abandoned;
        out
    }

    /// The earliest pending retransmission deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.iter().map(|p| p.next_retry).min()
    }

    /// Reliable messages still awaiting acknowledgement.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Reliable sends dropped after exhausting attempts.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    fn gc_seen(&mut self, now: SimTime) {
        if self.seen.len() > 1024 {
            let ttl = self.seen_ttl;
            self.seen.retain(|_, &mut t| now.duration_since(t) <= ttl);
        }
    }
}

impl Default for ReliableEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEER: IpAddr = IpAddr::new(10, 0, 0, 2);

    fn probe(nonce: u64) -> MgmtMsg {
        MgmtMsg::Probe { nonce }
    }

    #[test]
    fn reliable_send_retransmits_until_acked() {
        let mut ep = ReliableEndpoint::with_params(SimDuration::from_millis(100), 5);
        let (dst, bytes) = ep.send_reliable(PEER, probe(1), SimTime::ZERO);
        assert_eq!(dst, PEER);
        assert_eq!(ep.pending_count(), 1);
        // Not due yet.
        assert!(ep.poll(SimTime::from_millis(50)).is_empty());
        // Due: retransmit.
        let retx = ep.poll(SimTime::from_millis(100));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].1, bytes);
        // The peer acks.
        let env = Envelope::decode(&bytes).unwrap();
        let Envelope::Payload { id, .. } = env else {
            panic!()
        };
        let ack = Envelope::Ack { of: id }.encode();
        ep.on_datagram(PEER, &ack, SimTime::from_millis(150));
        assert_eq!(ep.pending_count(), 0);
        assert!(ep.poll(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn abandons_after_max_attempts() {
        let mut ep = ReliableEndpoint::with_params(SimDuration::from_millis(10), 3);
        ep.send_reliable(PEER, probe(2), SimTime::ZERO);
        let mut total = 1;
        for i in 1..10 {
            total += ep.poll(SimTime::from_millis(i * 10)).len();
        }
        assert_eq!(total, 3);
        assert_eq!(ep.pending_count(), 0);
        assert_eq!(ep.abandoned(), 1);
    }

    #[test]
    fn receiver_acks_and_dedups() {
        let mut sender = ReliableEndpoint::new();
        let mut receiver = ReliableEndpoint::new();
        let (_, bytes) = sender.send_reliable(PEER, probe(3), SimTime::ZERO);
        let me = IpAddr::new(10, 0, 0, 1);
        // First delivery: fresh message + an ack.
        let (msg, acks) = receiver.on_datagram(me, &bytes, SimTime::from_millis(1));
        assert_eq!(msg, Some(probe(3)));
        assert_eq!(acks.len(), 1);
        // Duplicate delivery (sender retransmitted): suppressed but re-acked.
        let (msg2, acks2) = receiver.on_datagram(me, &bytes, SimTime::from_millis(2));
        assert_eq!(msg2, None);
        assert_eq!(acks2.len(), 1);
        // The ack clears the sender's pending entry (it arrives *from*
        // the peer the original message was sent to).
        sender.on_datagram(PEER, &acks[0].1, SimTime::from_millis(3));
        assert_eq!(sender.pending_count(), 0);
    }

    #[test]
    fn unreliable_send_has_no_pending() {
        let mut ep = ReliableEndpoint::new();
        let (_, bytes) = ep.send_unreliable(PEER, probe(4));
        assert_eq!(ep.pending_count(), 0);
        let mut rx = ReliableEndpoint::new();
        let (msg, acks) = rx.on_datagram(PEER, &bytes, SimTime::ZERO);
        assert_eq!(msg, Some(probe(4)));
        assert!(acks.is_empty());
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut ep = ReliableEndpoint::with_params(SimDuration::from_millis(100), 3);
        assert!(ep.next_deadline().is_none());
        ep.send_reliable(PEER, probe(5), SimTime::ZERO);
        ep.send_reliable(PEER, probe(6), SimTime::from_millis(40));
        assert_eq!(ep.next_deadline(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn garbage_input_ignored() {
        let mut ep = ReliableEndpoint::new();
        let (msg, acks) = ep.on_datagram(PEER, &[1, 2, 3], SimTime::ZERO);
        assert!(msg.is_none());
        assert!(acks.is_empty());
    }

    #[test]
    fn per_peer_id_spaces_do_not_collide() {
        let mut rx = ReliableEndpoint::new();
        let a = IpAddr::new(10, 0, 0, 1);
        let b = IpAddr::new(10, 0, 0, 2);
        // Two different peers both use id 1.
        let bytes = Envelope::Payload {
            id: 1,
            needs_ack: false,
            msg: probe(7),
        }
        .encode();
        assert!(rx.on_datagram(a, &bytes, SimTime::ZERO).0.is_some());
        assert!(rx.on_datagram(b, &bytes, SimTime::ZERO).0.is_some());
        assert!(rx.on_datagram(a, &bytes, SimTime::ZERO).0.is_none());
    }
}
