//! # hydranet-mgmt
//!
//! The HydraNet-FT replica management protocol (paper §4.4): management
//! daemons on hosts and redirectors exchanging UDP (and "a form of reliable
//! UDP") messages to install replicas, assign daisy-chain roles, identify
//! failed servers by probing, and reconfigure chains after failures.
//!
//! - [`proto`] — message definitions and wire format.
//! - [`reliable`] — acknowledged/retransmitted/deduplicated UDP messaging.
//! - [`chain`] — role computation for daisy chains.
//! - [`daemon`] — the host-server daemon ([`HostDaemon`]).
//! - [`failover`] — the redirector-side controller
//!   ([`ReplicaController`]): registration, probing, reconfiguration.
//!
//! All components are sans-I/O: they consume datagrams and clock ticks and
//! emit action lists; `hydranet-core` wires them to stacks and nodes.
//!
//! [`HostDaemon`]: daemon::HostDaemon
//! [`ReplicaController`]: failover::ReplicaController

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chain;
pub mod daemon;
pub mod failover;
pub mod proto;
pub mod reliable;
pub mod wire;

pub use chain::{assignments, changed_assignments, RoleAssignment};
pub use daemon::{DaemonAction, HostDaemon};
pub use failover::{ControllerAction, ProbeParams, ReplicaController};
pub use proto::{Envelope, MgmtMsg, MGMT_PORT};
pub use reliable::ReliableEndpoint;
pub use wire::WireError;
