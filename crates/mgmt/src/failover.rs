//! The redirector-side replica manager: registration, failure
//! identification by probing, and chain reconfiguration (§4.4).

use std::collections::{BTreeMap, BTreeSet};

use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_obs::{kinds, Obs};
use hydranet_tcp::segment::SockAddr;

use crate::chain::{assignments, changed_assignments, describe};
use crate::proto::MgmtMsg;
use crate::reliable::ReliableEndpoint;

/// Actions the controller asks its host (the redirector node) to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerAction {
    /// Transmit a management datagram.
    Send(IpAddr, Vec<u8>),
    /// Install/replace the redirector-table chain for `service`
    /// (`chain[0]` is the primary). An empty chain removes the entry.
    UpdateTable {
        /// The service access point.
        service: SockAddr,
        /// The new chain, primary first.
        chain: Vec<IpAddr>,
    },
    /// Flood a route announcement (this redirector just became active) so
    /// routers flip their anycast next hop to it.
    AnnounceRoutes {
        /// Announcement sequence (the new epoch term); routers dedup on it.
        seq: u64,
    },
}

/// A monotonic table epoch: `term` bumps on every promotion, `seq` on every
/// replicated update within a term. Lexicographic order decides freshness,
/// so any update from before the latest promotion compares stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Epoch {
    /// Promotion count: whoever has the higher term was promoted later.
    pub term: u32,
    /// Update sequence within the term.
    pub seq: u64,
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.term, self.seq)
    }
}

/// Redirector pair membership: who the peer is and which side starts active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairConfig {
    /// The other redirector's (concrete, non-VIP) address.
    pub peer: IpAddr,
    /// Whether this side starts as the active member.
    pub initially_active: bool,
    /// Peer liveness probing: `timeout` is both the probe interval and the
    /// per-probe wait; `attempts` consecutive unanswered probes promote.
    pub probe: ProbeParams,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Active,
    Standby,
}

#[derive(Debug)]
struct PeerProbe {
    nonce: u64,
    deadline: SimTime,
    misses: u32,
}

#[derive(Debug)]
struct PairState {
    peer: IpAddr,
    role: Role,
    epoch: Epoch,
    probe: ProbeParams,
    /// Outstanding peer probe (both roles probe continuously).
    probing: Option<PeerProbe>,
    /// When the next peer probe goes out.
    next_probe_at: SimTime,
    /// Set on self-promotion: the next peer probe the (possibly deposed)
    /// ex-active answers triggers a reliable reconciling snapshot.
    reconcile_pending: bool,
}

/// Tuning for failure identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeParams {
    /// How long to wait for a `ProbeAck`.
    pub timeout: SimDuration,
    /// Probe rounds before a silent replica is declared failed.
    pub attempts: u32,
}

impl Default for ProbeParams {
    fn default() -> Self {
        ProbeParams {
            timeout: SimDuration::from_millis(300),
            attempts: 2,
        }
    }
}

#[derive(Debug)]
struct ProbeRound {
    nonce: u64,
    deadline: SimTime,
    awaiting: BTreeSet<IpAddr>,
    attempt: u32,
}

#[derive(Debug, Default)]
struct ServiceState {
    chain: Vec<IpAddr>,
    probing: Option<ProbeRound>,
}

/// The replica management controller embedded in a redirector.
#[derive(Debug)]
pub struct ReplicaController {
    addr: IpAddr,
    endpoint: ReliableEndpoint,
    // Deterministic iteration: probe scheduling order is part of the
    // event schedule.
    services: BTreeMap<SockAddr, ServiceState>,
    probe_params: ProbeParams,
    next_nonce: u64,
    actions: Vec<ControllerAction>,
    reconfigurations: u64,
    /// Redirector-pair replication state (`None` for a solo redirector).
    pair: Option<PairState>,
    promotions: u64,
    stale_rejections: u64,
    /// Telemetry sink (no-op unless wired via [`set_obs`](Self::set_obs)).
    obs: Obs,
}

impl ReplicaController {
    /// Creates a controller for the redirector at `addr`.
    pub fn new(addr: IpAddr, probe_params: ProbeParams) -> Self {
        ReplicaController {
            addr,
            endpoint: ReliableEndpoint::new(),
            services: BTreeMap::new(),
            probe_params,
            next_nonce: 1,
            actions: Vec::new(),
            reconfigurations: 0,
            pair: None,
            promotions: 0,
            stale_rejections: 0,
            obs: Obs::disabled(),
        }
    }

    /// Joins this controller to a redirector pair. The standby side starts
    /// probing the active peer; the active side replicates every table
    /// update to the standby.
    pub fn configure_pair(&mut self, cfg: PairConfig, now: SimTime) {
        self.pair = Some(PairState {
            peer: cfg.peer,
            role: if cfg.initially_active {
                Role::Active
            } else {
                Role::Standby
            },
            epoch: Epoch::default(),
            probe: cfg.probe,
            probing: None,
            next_probe_at: now + cfg.probe.timeout,
            reconcile_pending: false,
        });
    }

    /// Whether this controller currently acts as the pair's active member
    /// (solo controllers are always active).
    pub fn is_active(&self) -> bool {
        self.pair.as_ref().is_none_or(|p| p.role == Role::Active)
    }

    /// The current table epoch (`0.0` for solo controllers).
    pub fn epoch(&self) -> Epoch {
        self.pair.as_ref().map(|p| p.epoch).unwrap_or_default()
    }

    /// The configured pair peer, if any.
    pub fn peer(&self) -> Option<IpAddr> {
        self.pair.as_ref().map(|p| p.peer)
    }

    /// Times this controller promoted itself to active.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Stale-epoch replication updates rejected.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections
    }

    /// Wires telemetry: probe rounds, host removals, and committed chain
    /// reconfigurations are recorded on the timeline, plus a
    /// `mgmt.controller.<addr>.reconfigurations` counter.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The redirector address this controller runs at.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The current chain of `service` (primary first).
    pub fn chain(&self, service: SockAddr) -> Option<&[IpAddr]> {
        self.services.get(&service).map(|s| s.chain.as_slice())
    }

    /// Completed reconfigurations (diagnostics).
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Drains queued actions for the host node to execute.
    pub fn take_actions(&mut self) -> Vec<ControllerAction> {
        std::mem::take(&mut self.actions)
    }

    /// The earliest deadline (probe, retransmission, or peer probe).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let probe = self
            .services
            .values()
            .filter_map(|s| s.probing.as_ref().map(|p| p.deadline))
            .min();
        let peer = self.pair.as_ref().map(|p| {
            p.probing
                .as_ref()
                .map_or(p.next_probe_at, |probe| probe.deadline)
        });
        [probe, peer, self.endpoint.next_deadline()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Handles an incoming management datagram from `src`.
    pub fn on_datagram(&mut self, src: IpAddr, bytes: &[u8], now: SimTime) {
        let (msg, acks) = self.endpoint.on_datagram(src, bytes, now);
        for (dst, bytes) in acks {
            self.actions.push(ControllerAction::Send(dst, bytes));
        }
        let Some(msg) = msg else {
            return;
        };
        match msg {
            MgmtMsg::RegisterReplica { service, host } => self.register(service, host, now),
            MgmtMsg::Deregister { service, host } => self.remove_hosts(service, &[host], now),
            MgmtMsg::FailureReport { service, .. } => self.start_probe_round(service, now),
            MgmtMsg::ProbeAck { nonce } => {
                if self.pair.as_ref().is_some_and(|p| p.peer == src) {
                    self.on_peer_probe_ack(nonce, now);
                } else {
                    self.on_probe_ack(src, nonce);
                }
            }
            // Hosts never probe controllers, but a standby pair member
            // probes the active one; answer the peer, ignore the rest.
            MgmtMsg::Probe { nonce } => {
                if self.pair.as_ref().is_some_and(|p| p.peer == src) {
                    let out = self
                        .endpoint
                        .send_unreliable(src, MgmtMsg::ProbeAck { nonce });
                    self.actions.push(ControllerAction::Send(out.0, out.1));
                }
            }
            MgmtMsg::TableReplicate {
                term,
                seq,
                service,
                chain,
            } => self.on_table_replicate(src, Epoch { term, seq }, service, chain, now),
            MgmtMsg::TableSnapshot { term, seq, entries } => {
                self.on_table_snapshot(Epoch { term, seq }, entries, now);
            }
            MgmtMsg::EpochReject { term, seq } => {
                self.on_epoch_reject(src, Epoch { term, seq }, now);
            }
            // SetRole is sent by controllers, not received.
            MgmtMsg::SetRole { .. } => {}
        }
    }

    /// Advances timers: reliable retransmissions, probe deadlines, and the
    /// standby's peer liveness probing.
    pub fn poll(&mut self, now: SimTime) {
        for out in self.endpoint.poll(now) {
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
        let expired: Vec<SockAddr> = self
            .services
            .iter()
            .filter(|(_, s)| s.probing.as_ref().is_some_and(|p| now >= p.deadline))
            .map(|(&sap, _)| sap)
            .collect();
        for service in expired {
            self.probe_deadline(service, now);
        }
        self.poll_pair(now);
    }

    // ------------------------------------------------------------------

    /// "Creation of primary server / creation of backup servers" (§4.4):
    /// first registrant becomes primary, later ones append as backups.
    fn register(&mut self, service: SockAddr, host: IpAddr, now: SimTime) {
        let state = self.services.entry(service).or_default();
        if state.chain.contains(&host) {
            // Idempotent re-registration: re-announce the host's role.
            let chain = state.chain.clone();
            self.push_roles_for(service, &chain, Some(host), now);
            return;
        }
        let old = state.chain.clone();
        state.chain.push(host);
        let new = state.chain.clone();
        self.push_table_update(service, &new, now);
        // Tell every host whose assignment changed (the new tail, and the
        // previous tail which now has a successor).
        let changed = changed_assignments(&old, &new);
        for a in changed {
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    fn remove_hosts(&mut self, service: SockAddr, hosts: &[IpAddr], now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        let old = state.chain.clone();
        state.chain.retain(|h| !hosts.contains(h));
        let new = state.chain.clone();
        if old == new {
            return;
        }
        self.reconfigurations += 1;
        for host in &old {
            if !new.contains(host) {
                self.obs.event(
                    now.as_nanos(),
                    kinds::HOST_REMOVED,
                    &[("service", service.to_string()), ("host", host.to_string())],
                );
            }
        }
        self.obs.event(
            now.as_nanos(),
            kinds::CHAIN_RECONFIGURED,
            &[
                ("service", service.to_string()),
                ("chain", describe(&new)),
                ("length", new.len().to_string()),
            ],
        );
        self.obs
            .counter(&format!("mgmt.controller.{}.reconfigurations", self.addr))
            .inc();
        self.push_table_update(service, &new, now);
        for a in changed_assignments(&old, &new) {
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    /// "Reconfiguration after a failure detection: … the failed server
    /// needs to be identified" (§4.4): probe every chain member; whoever
    /// stays silent is declared failed.
    fn start_probe_round(&mut self, service: SockAddr, now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        if state.probing.is_some() || state.chain.is_empty() {
            return; // a round is already under way
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let awaiting: BTreeSet<IpAddr> = state.chain.iter().copied().collect();
        state.probing = Some(ProbeRound {
            nonce,
            deadline: now + self.probe_params.timeout,
            awaiting: awaiting.clone(),
            attempt: 1,
        });
        self.obs.event(
            now.as_nanos(),
            kinds::PROBE_STARTED,
            &[
                ("service", service.to_string()),
                ("nonce", nonce.to_string()),
                ("targets", awaiting.len().to_string()),
            ],
        );
        for host in awaiting {
            let out = self
                .endpoint
                .send_unreliable(host, MgmtMsg::Probe { nonce });
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    fn on_probe_ack(&mut self, src: IpAddr, nonce: u64) {
        for state in self.services.values_mut() {
            if let Some(round) = state.probing.as_mut() {
                if round.nonce == nonce {
                    round.awaiting.remove(&src);
                }
            }
        }
    }

    fn probe_deadline(&mut self, service: SockAddr, now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        let Some(round) = state.probing.take() else {
            return;
        };
        if round.awaiting.is_empty() {
            // Everyone answered: a false alarm (e.g. transient congestion
            // that cleared). Leave the chain as is.
            return;
        }
        if round.attempt < self.probe_params.attempts {
            let nonce = round.nonce;
            let awaiting = round.awaiting.clone();
            state.probing = Some(ProbeRound {
                nonce,
                deadline: now + self.probe_params.timeout,
                awaiting: awaiting.clone(),
                attempt: round.attempt + 1,
            });
            for host in awaiting {
                let out = self
                    .endpoint
                    .send_unreliable(host, MgmtMsg::Probe { nonce });
                self.actions.push(ControllerAction::Send(out.0, out.1));
            }
            return;
        }
        // Silent replicas are failed: shut them out of the chain.
        let failed: Vec<IpAddr> = round.awaiting.into_iter().collect();
        self.remove_hosts(service, &failed, now);
    }

    fn push_table_update(&mut self, service: SockAddr, chain: &[IpAddr], now: SimTime) {
        self.actions.push(ControllerAction::UpdateTable {
            service,
            chain: chain.to_vec(),
        });
        // An active pair member replicates the update to its standby under
        // the next epoch sequence number.
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        if pair.role != Role::Active {
            return;
        }
        pair.epoch.seq += 1;
        let (peer, epoch) = (pair.peer, pair.epoch);
        let msg = MgmtMsg::TableReplicate {
            term: epoch.term,
            seq: epoch.seq,
            service,
            chain: chain.to_vec(),
        };
        let out = self.endpoint.send_reliable(peer, msg, now);
        self.actions.push(ControllerAction::Send(out.0, out.1));
    }

    // ---------------------------- pair ----------------------------------

    /// Peer liveness probing, which *both* roles run continuously. The
    /// standby promotes itself after `attempts` consecutive unanswered
    /// probes; the active never promotes on misses — it probes so that a
    /// freshly promoted member notices when a deposed (crashed or
    /// partitioned) ex-active comes back, and can push it a reconciling
    /// snapshot (see [`Self::on_peer_probe_ack`]).
    fn poll_pair(&mut self, now: SimTime) {
        let Some(pair) = self.pair.as_ref() else {
            return;
        };
        let (attempts, peer, role) = (pair.probe.attempts, pair.peer, pair.role);
        let due_misses = match &pair.probing {
            Some(p) if now >= p.deadline => Some(p.misses + 1),
            None if now >= pair.next_probe_at => Some(0),
            _ => None,
        };
        match due_misses {
            Some(misses) if misses >= attempts && role == Role::Standby => self.promote_self(now),
            // Cap the counter so an active member probing a long-dead peer
            // cannot overflow it.
            Some(misses) => self.send_peer_probe(peer, misses.min(attempts), now),
            None => {}
        }
    }

    fn send_peer_probe(&mut self, peer: IpAddr, misses: u32, now: SimTime) {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let out = self
            .endpoint
            .send_unreliable(peer, MgmtMsg::Probe { nonce });
        self.actions.push(ControllerAction::Send(out.0, out.1));
        if let Some(pair) = self.pair.as_mut() {
            pair.probing = Some(PeerProbe {
                nonce,
                deadline: now + pair.probe.timeout,
                misses,
            });
        }
    }

    fn on_peer_probe_ack(&mut self, nonce: u64, now: SimTime) {
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        if pair.probing.as_ref().is_some_and(|p| p.nonce == nonce) {
            pair.probing = None;
            pair.next_probe_at = now + pair.probe.timeout;
            // First sign of life from the peer since this side promoted:
            // the peer may be a deposed ex-active whose stale replication
            // was abandoned while the link was down, so push it a full
            // snapshot — receiving the newer epoch demotes and resyncs it.
            if pair.role == Role::Active && pair.reconcile_pending {
                pair.reconcile_pending = false;
                let peer = pair.peer;
                let snap = self.snapshot_msg();
                let out = self.endpoint.send_reliable(peer, snap, now);
                self.actions.push(ControllerAction::Send(out.0, out.1));
            }
        }
    }

    /// The standby lost its peer: take over. The term bump makes every
    /// update the dead (or partitioned) ex-active later sends compare
    /// stale, and the route announcement flips the anycast next hop.
    fn promote_self(&mut self, now: SimTime) {
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        pair.role = Role::Active;
        pair.epoch.term += 1;
        pair.epoch.seq = 0;
        pair.probing = None;
        pair.next_probe_at = now + pair.probe.timeout;
        pair.reconcile_pending = true;
        let (peer, term) = (pair.peer, pair.epoch.term);
        self.promotions += 1;
        self.obs.event(
            now.as_nanos(),
            kinds::REDIRECTOR_PROMOTED,
            &[("peer", peer.to_string()), ("term", term.to_string())],
        );
        self.obs
            .counter(&format!("mgmt.controller.{}.promotions", self.addr))
            .inc();
        self.actions
            .push(ControllerAction::AnnounceRoutes { seq: term as u64 });
    }

    /// This side met a newer epoch: it was superseded while partitioned or
    /// slow. Drop back to standby and resume peer probing.
    fn demote_self(&mut self, epoch: Epoch, now: SimTime) {
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        pair.role = Role::Standby;
        pair.epoch = epoch;
        pair.probing = None;
        pair.next_probe_at = now + pair.probe.timeout;
        pair.reconcile_pending = false;
        let peer = pair.peer;
        for state in self.services.values_mut() {
            state.probing = None; // abandon probe rounds started while active
        }
        self.obs.event(
            now.as_nanos(),
            kinds::REDIRECTOR_DEMOTED,
            &[("peer", peer.to_string()), ("epoch", epoch.to_string())],
        );
    }

    fn snapshot_msg(&self) -> MgmtMsg {
        let epoch = self.epoch();
        MgmtMsg::TableSnapshot {
            term: epoch.term,
            seq: epoch.seq,
            entries: self
                .services
                .iter()
                .map(|(&sap, s)| (sap, s.chain.clone()))
                .collect(),
        }
    }

    fn on_table_replicate(
        &mut self,
        src: IpAddr,
        incoming: Epoch,
        service: SockAddr,
        chain: Vec<IpAddr>,
        now: SimTime,
    ) {
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        if incoming.term < pair.epoch.term {
            // A partitioned ex-active catching up: reject the stale update
            // and push a snapshot so it can demote and resync.
            let epoch = pair.epoch;
            self.stale_rejections += 1;
            self.obs.event(
                now.as_nanos(),
                kinds::STALE_EPOCH_REJECTED,
                &[
                    ("from", src.to_string()),
                    ("stale", incoming.to_string()),
                    ("current", epoch.to_string()),
                ],
            );
            self.obs
                .counter(&format!("mgmt.controller.{}.stale_rejections", self.addr))
                .inc();
            let reject = MgmtMsg::EpochReject {
                term: epoch.term,
                seq: epoch.seq,
            };
            let out = self.endpoint.send_unreliable(src, reject);
            self.actions.push(ControllerAction::Send(out.0, out.1));
            let snap = self.snapshot_msg();
            let out = self.endpoint.send_reliable(src, snap, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
            return;
        }
        if incoming <= pair.epoch {
            return; // duplicate or reordered within the current term
        }
        let superseded = incoming.term > pair.epoch.term && pair.role == Role::Active;
        if superseded {
            self.demote_self(incoming, now);
        } else {
            pair.epoch = incoming;
        }
        if chain.is_empty() {
            self.services.remove(&service);
        } else {
            self.services.entry(service).or_default().chain = chain.clone();
        }
        // Install into the local engine table directly — never back through
        // push_table_update, which would re-replicate.
        self.actions
            .push(ControllerAction::UpdateTable { service, chain });
    }

    fn on_table_snapshot(
        &mut self,
        incoming: Epoch,
        entries: Vec<(SockAddr, Vec<IpAddr>)>,
        now: SimTime,
    ) {
        let Some(pair) = self.pair.as_mut() else {
            return;
        };
        if incoming < pair.epoch {
            return;
        }
        if incoming.term > pair.epoch.term && pair.role == Role::Active {
            self.demote_self(incoming, now);
        } else {
            pair.epoch = incoming;
        }
        // Remove services absent from the snapshot, then install the rest.
        let keep: BTreeSet<SockAddr> = entries.iter().map(|(sap, _)| *sap).collect();
        let stale: Vec<SockAddr> = self
            .services
            .keys()
            .filter(|sap| !keep.contains(sap))
            .copied()
            .collect();
        for sap in stale {
            self.services.remove(&sap);
            self.actions.push(ControllerAction::UpdateTable {
                service: sap,
                chain: Vec::new(),
            });
        }
        for (service, chain) in entries {
            self.services.entry(service).or_default().chain = chain.clone();
            self.actions
                .push(ControllerAction::UpdateTable { service, chain });
        }
    }

    fn on_epoch_reject(&mut self, src: IpAddr, incoming: Epoch, now: SimTime) {
        let Some(pair) = self.pair.as_ref() else {
            return;
        };
        if pair.peer != src || incoming <= pair.epoch {
            return;
        }
        if pair.role == Role::Active {
            self.demote_self(incoming, now);
        } else if let Some(pair) = self.pair.as_mut() {
            pair.epoch = incoming;
        }
    }

    fn push_roles_for(
        &mut self,
        service: SockAddr,
        chain: &[IpAddr],
        only: Option<IpAddr>,
        now: SimTime,
    ) {
        for a in assignments(chain) {
            if only.is_some_and(|h| h != a.host) {
                continue;
            }
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Envelope;

    const RD: IpAddr = IpAddr::new(10, 9, 0, 1);

    fn h(n: u8) -> IpAddr {
        IpAddr::new(10, 0, n, 1)
    }

    fn service() -> SockAddr {
        SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
    }

    fn reg_with_id(host: IpAddr, id: u64) -> Vec<u8> {
        Envelope::Payload {
            id,
            needs_ack: false,
            msg: MgmtMsg::RegisterReplica {
                service: service(),
                host,
            },
        }
        .encode()
    }

    fn reg(host: IpAddr) -> Vec<u8> {
        reg_with_id(host, host.to_bits() as u64)
    }

    fn decode_send(action: &ControllerAction) -> Option<(IpAddr, MgmtMsg)> {
        if let ControllerAction::Send(dst, bytes) = action {
            if let Ok(Envelope::Payload { msg, .. }) = Envelope::decode(bytes) {
                return Some((*dst, msg));
            }
        }
        None
    }

    fn table_updates(actions: &[ControllerAction]) -> Vec<Vec<IpAddr>> {
        actions
            .iter()
            .filter_map(|a| match a {
                ControllerAction::UpdateTable { chain, .. } => Some(chain.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn registration_builds_chain_in_order() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.on_datagram(h(3), &reg(h(3)), SimTime::ZERO);
        assert_eq!(c.chain(service()).unwrap(), &[h(1), h(2), h(3)]);
        let actions = c.take_actions();
        let updates = table_updates(&actions);
        assert_eq!(updates.last().unwrap(), &vec![h(1), h(2), h(3)]);
        // SetRole messages went out to affected hosts.
        let roles: Vec<_> = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::SetRole { .. }))
            .collect();
        assert!(roles.iter().any(|(dst, _)| *dst == h(1)));
        assert!(roles.iter().any(|(dst, _)| *dst == h(3)));
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.take_actions();
        // A daemon re-registering uses a fresh envelope id (an identical id
        // would be suppressed by the reliable layer's duplicate filter).
        c.on_datagram(h(1), &reg_with_id(h(1), 777), SimTime::from_millis(1));
        assert_eq!(c.chain(service()).unwrap(), &[h(1)]);
        // Re-registration re-announces the role but does not duplicate the
        // chain entry.
        let actions = c.take_actions();
        assert!(actions
            .iter()
            .filter_map(decode_send)
            .any(|(dst, m)| { dst == h(1) && matches!(m, MgmtMsg::SetRole { index: 0, .. }) }));
    }

    #[test]
    fn failure_report_probes_then_removes_silent_hosts() {
        let params = ProbeParams {
            timeout: SimDuration::from_millis(100),
            attempts: 2,
        };
        let mut c = ReplicaController::new(RD, params);
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();

        // h2 reports the primary broken.
        let report = Envelope::Payload {
            id: 99,
            needs_ack: false,
            msg: MgmtMsg::FailureReport {
                service: service(),
                reporter: h(2),
                observed: 6,
            },
        }
        .encode();
        c.on_datagram(h(2), &report, SimTime::from_secs(1));
        let actions = c.take_actions();
        let probes: Vec<_> = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::Probe { .. }))
            .collect();
        assert_eq!(probes.len(), 2, "both chain members probed");
        let nonce = match probes[0].1 {
            MgmtMsg::Probe { nonce } => nonce,
            _ => unreachable!(),
        };

        // Only h2 answers.
        let ack = Envelope::Payload {
            id: 1,
            needs_ack: false,
            msg: MgmtMsg::ProbeAck { nonce },
        }
        .encode();
        c.on_datagram(h(2), &ack, SimTime::from_millis(1050));

        // First deadline: h1 still silent → second round.
        c.poll(SimTime::from_millis(1100));
        let actions = c.take_actions();
        let second_probes = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(dst, m)| *dst == h(1) && matches!(m, MgmtMsg::Probe { .. }))
            .count();
        assert_eq!(second_probes, 1, "only the silent host is re-probed");

        // Second deadline: h1 declared failed, h2 promoted.
        c.poll(SimTime::from_millis(1200));
        assert_eq!(c.chain(service()).unwrap(), &[h(2)]);
        assert_eq!(c.reconfigurations(), 1);
        let actions = c.take_actions();
        let updates = table_updates(&actions);
        assert_eq!(updates.last().unwrap(), &vec![h(2)]);
        assert!(actions.iter().filter_map(decode_send).any(|(dst, m)| {
            dst == h(2)
                && matches!(
                    m,
                    MgmtMsg::SetRole {
                        index: 0,
                        predecessor: None,
                        has_successor: false,
                        ..
                    }
                )
        }));
    }

    #[test]
    fn false_alarm_keeps_chain() {
        let params = ProbeParams {
            timeout: SimDuration::from_millis(100),
            attempts: 1,
        };
        let mut c = ReplicaController::new(RD, params);
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        let report = Envelope::Payload {
            id: 99,
            needs_ack: false,
            msg: MgmtMsg::FailureReport {
                service: service(),
                reporter: h(2),
                observed: 5,
            },
        }
        .encode();
        c.on_datagram(h(2), &report, SimTime::from_secs(1));
        let actions = c.take_actions();
        let probes: Vec<_> = actions.iter().filter_map(decode_send).collect();
        let nonce = probes
            .iter()
            .find_map(|(_, m)| match m {
                MgmtMsg::Probe { nonce } => Some(*nonce),
                _ => None,
            })
            .unwrap();
        for host in [h(1), h(2)] {
            let ack = Envelope::Payload {
                id: 1,
                needs_ack: false,
                msg: MgmtMsg::ProbeAck { nonce },
            }
            .encode();
            c.on_datagram(host, &ack, SimTime::from_millis(1020));
        }
        c.poll(SimTime::from_millis(1150));
        assert_eq!(c.chain(service()).unwrap(), &[h(1), h(2)]);
        assert_eq!(c.reconfigurations(), 0);
    }

    #[test]
    fn voluntary_deregistration_promotes_next() {
        // "If the server is a primary, the redirector designates the backup
        // immediately following the primary … as the new primary" (§4.4).
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        let dereg = Envelope::Payload {
            id: 50,
            needs_ack: false,
            msg: MgmtMsg::Deregister {
                service: service(),
                host: h(1),
            },
        }
        .encode();
        c.on_datagram(h(1), &dereg, SimTime::from_secs(2));
        assert_eq!(c.chain(service()).unwrap(), &[h(2)]);
    }

    const RD_B: IpAddr = IpAddr::new(10, 9, 0, 2);

    fn pair_params() -> ProbeParams {
        ProbeParams {
            timeout: SimDuration::from_millis(100),
            attempts: 2,
        }
    }

    fn paired(addr: IpAddr, peer: IpAddr, active: bool) -> ReplicaController {
        let mut c = ReplicaController::new(addr, pair_params());
        c.configure_pair(
            PairConfig {
                peer,
                initially_active: active,
                probe: pair_params(),
            },
            SimTime::ZERO,
        );
        c
    }

    /// Delivers every queued `Send` addressed to `to.addr()` into `to`,
    /// returning the actions that were not network sends to it.
    fn shuttle(from: &mut ReplicaController, to: &mut ReplicaController, now: SimTime) {
        let from_addr = from.addr();
        for action in from.take_actions() {
            if let ControllerAction::Send(dst, bytes) = &action {
                if *dst == to.addr() {
                    to.on_datagram(from_addr, bytes, now);
                }
            }
        }
    }

    #[test]
    fn standby_promotes_after_missed_peer_probes_and_announces() {
        let mut c = paired(RD_B, RD, false);
        assert!(!c.is_active());
        // First probe goes out at the probe interval.
        c.poll(SimTime::from_millis(100));
        let probes = c
            .take_actions()
            .iter()
            .filter_map(decode_send)
            .filter(|(dst, m)| *dst == RD && matches!(m, MgmtMsg::Probe { .. }))
            .count();
        assert_eq!(probes, 1);
        // Unanswered deadline: one retry, still standby.
        c.poll(SimTime::from_millis(200));
        assert!(!c.is_active());
        // Second unanswered deadline: promote, bump the term, announce.
        c.poll(SimTime::from_millis(300));
        assert!(c.is_active());
        assert_eq!(c.promotions(), 1);
        assert_eq!(c.epoch(), Epoch { term: 1, seq: 0 });
        assert!(c
            .take_actions()
            .iter()
            .any(|a| matches!(a, ControllerAction::AnnounceRoutes { seq: 1 })));
    }

    #[test]
    fn revived_silent_ex_active_is_reconciled_by_peer_probes() {
        // The ex-active crashed long enough for the new active's stale
        // replication window to close, then came back *silent* (nothing
        // pending to retransmit). The new active's continuous peer probing
        // must notice it and push a reconciling snapshot unprompted.
        let mut a = paired(RD, RD_B, true);
        let mut b = paired(RD_B, RD, false);
        a.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        shuttle(&mut a, &mut b, SimTime::from_millis(1));
        // a "dies": b misses two probes and takes over.
        b.poll(SimTime::from_millis(100));
        b.take_actions();
        b.poll(SimTime::from_millis(200));
        b.poll(SimTime::from_millis(300));
        assert!(b.is_active());
        b.take_actions();
        // a comes back with empty queues, still believing it is active at
        // term 0. b's next probe reaches it; its ack triggers the snapshot.
        let now = SimTime::from_millis(400);
        b.poll(now);
        shuttle(&mut b, &mut a, now); // probe reaches a
        shuttle(&mut a, &mut b, now); // ack reaches b
        shuttle(&mut b, &mut a, now); // reconciling snapshot reaches a
        assert!(!a.is_active(), "deposed ex-active must demote");
        assert_eq!(a.epoch().term, 1);
        assert_eq!(a.chain(service()).unwrap(), &[h(1)]);
        // One snapshot is enough: the flag cleared.
        let later = SimTime::from_millis(500);
        b.poll(later);
        shuttle(&mut b, &mut a, later);
        shuttle(&mut a, &mut b, later);
        let snaps = b
            .take_actions()
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::TableSnapshot { .. }))
            .count();
        assert_eq!(snaps, 0, "reconciliation must fire once, not per ack");
    }

    #[test]
    fn answered_peer_probes_keep_the_standby_down() {
        let mut a = paired(RD, RD_B, true);
        let mut b = paired(RD_B, RD, false);
        for ms in (100..=1000).step_by(100) {
            let now = SimTime::from_millis(ms);
            a.poll(now);
            b.poll(now);
            shuttle(&mut b, &mut a, now); // probes reach the active…
            shuttle(&mut a, &mut b, now); // …whose acks reach the standby
        }
        assert!(!b.is_active());
        assert_eq!(b.promotions(), 0);
        assert!(a.is_active());
    }

    #[test]
    fn active_replicates_chain_updates_to_standby() {
        let mut a = paired(RD, RD_B, true);
        let mut b = paired(RD_B, RD, false);
        a.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        a.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        shuttle(&mut a, &mut b, SimTime::from_millis(1));
        assert_eq!(b.chain(service()).unwrap(), &[h(1), h(2)]);
        assert_eq!(b.epoch(), Epoch { term: 0, seq: 2 });
        // The standby installed the replicated chain into its own engine.
        let updates = table_updates(&b.take_actions());
        assert_eq!(updates.last().unwrap(), &vec![h(1), h(2)]);
        // Replaying the same replicates is harmless (endpoint dedup), and a
        // reordered older seq is ignored by the epoch guard.
        assert_eq!(b.chain(service()).unwrap(), &[h(1), h(2)]);
    }

    #[test]
    fn stale_ex_active_is_rejected_demoted_and_resynced() {
        let mut a = paired(RD, RD_B, true);
        let mut b = paired(RD_B, RD, false);
        a.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        a.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        shuttle(&mut a, &mut b, SimTime::from_millis(1));

        // b loses contact with a and promotes (term 1).
        b.poll(SimTime::from_millis(100));
        b.take_actions();
        b.poll(SimTime::from_millis(200));
        b.poll(SimTime::from_millis(300));
        assert!(b.is_active());
        b.take_actions();

        // The partitioned ex-active keeps mutating its table at term 0…
        a.on_datagram(h(3), &reg(h(3)), SimTime::from_millis(400));
        assert_eq!(a.chain(service()).unwrap(), &[h(1), h(2), h(3)]);

        // …and when the partition heals, its stale update is rejected.
        let now = SimTime::from_millis(500);
        shuttle(&mut a, &mut b, now);
        assert_eq!(b.stale_rejections(), 1);
        assert_eq!(b.chain(service()).unwrap(), &[h(1), h(2)], "not applied");

        // The reject + snapshot demote and resync the ex-active.
        shuttle(&mut b, &mut a, now);
        assert!(!a.is_active());
        assert_eq!(a.epoch().term, 1);
        assert_eq!(a.chain(service()).unwrap(), &[h(1), h(2)]);
        let updates = table_updates(&a.take_actions());
        assert_eq!(updates.last().unwrap(), &vec![h(1), h(2)]);
    }

    #[test]
    fn snapshot_removes_services_missing_from_it() {
        let mut b = paired(RD_B, RD, false);
        // The standby believes in a service the snapshot no longer has.
        let doomed = SockAddr::new(IpAddr::new(192, 20, 225, 99), 81);
        b.on_datagram(
            RD,
            &Envelope::Payload {
                id: 1,
                needs_ack: true,
                msg: MgmtMsg::TableReplicate {
                    term: 0,
                    seq: 1,
                    service: doomed,
                    chain: vec![h(5)],
                },
            }
            .encode(),
            SimTime::ZERO,
        );
        assert_eq!(b.chain(doomed).unwrap(), &[h(5)]);
        b.take_actions();
        b.on_datagram(
            RD,
            &Envelope::Payload {
                id: 2,
                needs_ack: true,
                msg: MgmtMsg::TableSnapshot {
                    term: 0,
                    seq: 2,
                    entries: vec![(service(), vec![h(1)])],
                },
            }
            .encode(),
            SimTime::from_millis(1),
        );
        assert!(b.chain(doomed).is_none());
        assert_eq!(b.chain(service()).unwrap(), &[h(1)]);
        let actions = b.take_actions();
        let updates: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ControllerAction::UpdateTable { service, chain } => Some((*service, chain.clone())),
                _ => None,
            })
            .collect();
        assert!(updates.contains(&(doomed, vec![])));
        assert!(updates.contains(&(service(), vec![h(1)])));
    }

    #[test]
    fn concurrent_failure_report_does_not_double_probe() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        for id in [1u64, 2] {
            let report = Envelope::Payload {
                id,
                needs_ack: false,
                msg: MgmtMsg::FailureReport {
                    service: service(),
                    reporter: h(2),
                    observed: 5,
                },
            }
            .encode();
            c.on_datagram(h(2), &report, SimTime::from_secs(1));
        }
        let probes = c
            .take_actions()
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::Probe { .. }))
            .count();
        assert_eq!(probes, 2, "one round of two probes, not two rounds");
    }
}
