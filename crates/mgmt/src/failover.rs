//! The redirector-side replica manager: registration, failure
//! identification by probing, and chain reconfiguration (§4.4).

use std::collections::{BTreeMap, BTreeSet};

use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_obs::{kinds, Obs};
use hydranet_tcp::segment::SockAddr;

use crate::chain::{assignments, changed_assignments, describe};
use crate::proto::MgmtMsg;
use crate::reliable::ReliableEndpoint;

/// Actions the controller asks its host (the redirector node) to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerAction {
    /// Transmit a management datagram.
    Send(IpAddr, Vec<u8>),
    /// Install/replace the redirector-table chain for `service`
    /// (`chain[0]` is the primary). An empty chain removes the entry.
    UpdateTable {
        /// The service access point.
        service: SockAddr,
        /// The new chain, primary first.
        chain: Vec<IpAddr>,
    },
}

/// Tuning for failure identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeParams {
    /// How long to wait for a `ProbeAck`.
    pub timeout: SimDuration,
    /// Probe rounds before a silent replica is declared failed.
    pub attempts: u32,
}

impl Default for ProbeParams {
    fn default() -> Self {
        ProbeParams {
            timeout: SimDuration::from_millis(300),
            attempts: 2,
        }
    }
}

#[derive(Debug)]
struct ProbeRound {
    nonce: u64,
    deadline: SimTime,
    awaiting: BTreeSet<IpAddr>,
    attempt: u32,
}

#[derive(Debug, Default)]
struct ServiceState {
    chain: Vec<IpAddr>,
    probing: Option<ProbeRound>,
}

/// The replica management controller embedded in a redirector.
#[derive(Debug)]
pub struct ReplicaController {
    addr: IpAddr,
    endpoint: ReliableEndpoint,
    // Deterministic iteration: probe scheduling order is part of the
    // event schedule.
    services: BTreeMap<SockAddr, ServiceState>,
    probe_params: ProbeParams,
    next_nonce: u64,
    actions: Vec<ControllerAction>,
    reconfigurations: u64,
    /// Telemetry sink (no-op unless wired via [`set_obs`](Self::set_obs)).
    obs: Obs,
}

impl ReplicaController {
    /// Creates a controller for the redirector at `addr`.
    pub fn new(addr: IpAddr, probe_params: ProbeParams) -> Self {
        ReplicaController {
            addr,
            endpoint: ReliableEndpoint::new(),
            services: BTreeMap::new(),
            probe_params,
            next_nonce: 1,
            actions: Vec::new(),
            reconfigurations: 0,
            obs: Obs::disabled(),
        }
    }

    /// Wires telemetry: probe rounds, host removals, and committed chain
    /// reconfigurations are recorded on the timeline, plus a
    /// `mgmt.controller.<addr>.reconfigurations` counter.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The redirector address this controller runs at.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The current chain of `service` (primary first).
    pub fn chain(&self, service: SockAddr) -> Option<&[IpAddr]> {
        self.services.get(&service).map(|s| s.chain.as_slice())
    }

    /// Completed reconfigurations (diagnostics).
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Drains queued actions for the host node to execute.
    pub fn take_actions(&mut self) -> Vec<ControllerAction> {
        std::mem::take(&mut self.actions)
    }

    /// The earliest deadline (probe or retransmission).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let probe = self
            .services
            .values()
            .filter_map(|s| s.probing.as_ref().map(|p| p.deadline))
            .min();
        [probe, self.endpoint.next_deadline()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Handles an incoming management datagram from `src`.
    pub fn on_datagram(&mut self, src: IpAddr, bytes: &[u8], now: SimTime) {
        let (msg, acks) = self.endpoint.on_datagram(src, bytes, now);
        for (dst, bytes) in acks {
            self.actions.push(ControllerAction::Send(dst, bytes));
        }
        let Some(msg) = msg else {
            return;
        };
        match msg {
            MgmtMsg::RegisterReplica { service, host } => self.register(service, host, now),
            MgmtMsg::Deregister { service, host } => self.remove_hosts(service, &[host], now),
            MgmtMsg::FailureReport { service, .. } => self.start_probe_round(service, now),
            MgmtMsg::ProbeAck { nonce } => self.on_probe_ack(src, nonce),
            // Probe/SetRole are sent by controllers, not received.
            MgmtMsg::Probe { .. } | MgmtMsg::SetRole { .. } => {}
        }
    }

    /// Advances timers: reliable retransmissions and probe deadlines.
    pub fn poll(&mut self, now: SimTime) {
        for out in self.endpoint.poll(now) {
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
        let expired: Vec<SockAddr> = self
            .services
            .iter()
            .filter(|(_, s)| s.probing.as_ref().is_some_and(|p| now >= p.deadline))
            .map(|(&sap, _)| sap)
            .collect();
        for service in expired {
            self.probe_deadline(service, now);
        }
    }

    // ------------------------------------------------------------------

    /// "Creation of primary server / creation of backup servers" (§4.4):
    /// first registrant becomes primary, later ones append as backups.
    fn register(&mut self, service: SockAddr, host: IpAddr, now: SimTime) {
        let state = self.services.entry(service).or_default();
        if state.chain.contains(&host) {
            // Idempotent re-registration: re-announce the host's role.
            let chain = state.chain.clone();
            self.push_roles_for(service, &chain, Some(host), now);
            return;
        }
        let old = state.chain.clone();
        state.chain.push(host);
        let new = state.chain.clone();
        self.push_table_update(service, &new);
        // Tell every host whose assignment changed (the new tail, and the
        // previous tail which now has a successor).
        let changed = changed_assignments(&old, &new);
        for a in changed {
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    fn remove_hosts(&mut self, service: SockAddr, hosts: &[IpAddr], now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        let old = state.chain.clone();
        state.chain.retain(|h| !hosts.contains(h));
        let new = state.chain.clone();
        if old == new {
            return;
        }
        self.reconfigurations += 1;
        for host in &old {
            if !new.contains(host) {
                self.obs.event(
                    now.as_nanos(),
                    kinds::HOST_REMOVED,
                    &[("service", service.to_string()), ("host", host.to_string())],
                );
            }
        }
        self.obs.event(
            now.as_nanos(),
            kinds::CHAIN_RECONFIGURED,
            &[
                ("service", service.to_string()),
                ("chain", describe(&new)),
                ("length", new.len().to_string()),
            ],
        );
        self.obs
            .counter(&format!("mgmt.controller.{}.reconfigurations", self.addr))
            .inc();
        self.push_table_update(service, &new);
        for a in changed_assignments(&old, &new) {
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    /// "Reconfiguration after a failure detection: … the failed server
    /// needs to be identified" (§4.4): probe every chain member; whoever
    /// stays silent is declared failed.
    fn start_probe_round(&mut self, service: SockAddr, now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        if state.probing.is_some() || state.chain.is_empty() {
            return; // a round is already under way
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let awaiting: BTreeSet<IpAddr> = state.chain.iter().copied().collect();
        state.probing = Some(ProbeRound {
            nonce,
            deadline: now + self.probe_params.timeout,
            awaiting: awaiting.clone(),
            attempt: 1,
        });
        self.obs.event(
            now.as_nanos(),
            kinds::PROBE_STARTED,
            &[
                ("service", service.to_string()),
                ("nonce", nonce.to_string()),
                ("targets", awaiting.len().to_string()),
            ],
        );
        for host in awaiting {
            let out = self
                .endpoint
                .send_unreliable(host, MgmtMsg::Probe { nonce });
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }

    fn on_probe_ack(&mut self, src: IpAddr, nonce: u64) {
        for state in self.services.values_mut() {
            if let Some(round) = state.probing.as_mut() {
                if round.nonce == nonce {
                    round.awaiting.remove(&src);
                }
            }
        }
    }

    fn probe_deadline(&mut self, service: SockAddr, now: SimTime) {
        let Some(state) = self.services.get_mut(&service) else {
            return;
        };
        let Some(round) = state.probing.take() else {
            return;
        };
        if round.awaiting.is_empty() {
            // Everyone answered: a false alarm (e.g. transient congestion
            // that cleared). Leave the chain as is.
            return;
        }
        if round.attempt < self.probe_params.attempts {
            let nonce = round.nonce;
            let awaiting = round.awaiting.clone();
            state.probing = Some(ProbeRound {
                nonce,
                deadline: now + self.probe_params.timeout,
                awaiting: awaiting.clone(),
                attempt: round.attempt + 1,
            });
            for host in awaiting {
                let out = self
                    .endpoint
                    .send_unreliable(host, MgmtMsg::Probe { nonce });
                self.actions.push(ControllerAction::Send(out.0, out.1));
            }
            return;
        }
        // Silent replicas are failed: shut them out of the chain.
        let failed: Vec<IpAddr> = round.awaiting.into_iter().collect();
        self.remove_hosts(service, &failed, now);
    }

    fn push_table_update(&mut self, service: SockAddr, chain: &[IpAddr]) {
        self.actions.push(ControllerAction::UpdateTable {
            service,
            chain: chain.to_vec(),
        });
    }

    fn push_roles_for(
        &mut self,
        service: SockAddr,
        chain: &[IpAddr],
        only: Option<IpAddr>,
        now: SimTime,
    ) {
        for a in assignments(chain) {
            if only.is_some_and(|h| h != a.host) {
                continue;
            }
            let msg = a.to_msg(service);
            let out = self.endpoint.send_reliable(a.host, msg, now);
            self.actions.push(ControllerAction::Send(out.0, out.1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Envelope;

    const RD: IpAddr = IpAddr::new(10, 9, 0, 1);

    fn h(n: u8) -> IpAddr {
        IpAddr::new(10, 0, n, 1)
    }

    fn service() -> SockAddr {
        SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
    }

    fn reg_with_id(host: IpAddr, id: u64) -> Vec<u8> {
        Envelope::Payload {
            id,
            needs_ack: false,
            msg: MgmtMsg::RegisterReplica {
                service: service(),
                host,
            },
        }
        .encode()
    }

    fn reg(host: IpAddr) -> Vec<u8> {
        reg_with_id(host, host.to_bits() as u64)
    }

    fn decode_send(action: &ControllerAction) -> Option<(IpAddr, MgmtMsg)> {
        if let ControllerAction::Send(dst, bytes) = action {
            if let Ok(Envelope::Payload { msg, .. }) = Envelope::decode(bytes) {
                return Some((*dst, msg));
            }
        }
        None
    }

    fn table_updates(actions: &[ControllerAction]) -> Vec<Vec<IpAddr>> {
        actions
            .iter()
            .filter_map(|a| match a {
                ControllerAction::UpdateTable { chain, .. } => Some(chain.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn registration_builds_chain_in_order() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.on_datagram(h(3), &reg(h(3)), SimTime::ZERO);
        assert_eq!(c.chain(service()).unwrap(), &[h(1), h(2), h(3)]);
        let actions = c.take_actions();
        let updates = table_updates(&actions);
        assert_eq!(updates.last().unwrap(), &vec![h(1), h(2), h(3)]);
        // SetRole messages went out to affected hosts.
        let roles: Vec<_> = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::SetRole { .. }))
            .collect();
        assert!(roles.iter().any(|(dst, _)| *dst == h(1)));
        assert!(roles.iter().any(|(dst, _)| *dst == h(3)));
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.take_actions();
        // A daemon re-registering uses a fresh envelope id (an identical id
        // would be suppressed by the reliable layer's duplicate filter).
        c.on_datagram(h(1), &reg_with_id(h(1), 777), SimTime::from_millis(1));
        assert_eq!(c.chain(service()).unwrap(), &[h(1)]);
        // Re-registration re-announces the role but does not duplicate the
        // chain entry.
        let actions = c.take_actions();
        assert!(actions
            .iter()
            .filter_map(decode_send)
            .any(|(dst, m)| { dst == h(1) && matches!(m, MgmtMsg::SetRole { index: 0, .. }) }));
    }

    #[test]
    fn failure_report_probes_then_removes_silent_hosts() {
        let params = ProbeParams {
            timeout: SimDuration::from_millis(100),
            attempts: 2,
        };
        let mut c = ReplicaController::new(RD, params);
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();

        // h2 reports the primary broken.
        let report = Envelope::Payload {
            id: 99,
            needs_ack: false,
            msg: MgmtMsg::FailureReport {
                service: service(),
                reporter: h(2),
                observed: 6,
            },
        }
        .encode();
        c.on_datagram(h(2), &report, SimTime::from_secs(1));
        let actions = c.take_actions();
        let probes: Vec<_> = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::Probe { .. }))
            .collect();
        assert_eq!(probes.len(), 2, "both chain members probed");
        let nonce = match probes[0].1 {
            MgmtMsg::Probe { nonce } => nonce,
            _ => unreachable!(),
        };

        // Only h2 answers.
        let ack = Envelope::Payload {
            id: 1,
            needs_ack: false,
            msg: MgmtMsg::ProbeAck { nonce },
        }
        .encode();
        c.on_datagram(h(2), &ack, SimTime::from_millis(1050));

        // First deadline: h1 still silent → second round.
        c.poll(SimTime::from_millis(1100));
        let actions = c.take_actions();
        let second_probes = actions
            .iter()
            .filter_map(decode_send)
            .filter(|(dst, m)| *dst == h(1) && matches!(m, MgmtMsg::Probe { .. }))
            .count();
        assert_eq!(second_probes, 1, "only the silent host is re-probed");

        // Second deadline: h1 declared failed, h2 promoted.
        c.poll(SimTime::from_millis(1200));
        assert_eq!(c.chain(service()).unwrap(), &[h(2)]);
        assert_eq!(c.reconfigurations(), 1);
        let actions = c.take_actions();
        let updates = table_updates(&actions);
        assert_eq!(updates.last().unwrap(), &vec![h(2)]);
        assert!(actions.iter().filter_map(decode_send).any(|(dst, m)| {
            dst == h(2)
                && matches!(
                    m,
                    MgmtMsg::SetRole {
                        index: 0,
                        predecessor: None,
                        has_successor: false,
                        ..
                    }
                )
        }));
    }

    #[test]
    fn false_alarm_keeps_chain() {
        let params = ProbeParams {
            timeout: SimDuration::from_millis(100),
            attempts: 1,
        };
        let mut c = ReplicaController::new(RD, params);
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        let report = Envelope::Payload {
            id: 99,
            needs_ack: false,
            msg: MgmtMsg::FailureReport {
                service: service(),
                reporter: h(2),
                observed: 5,
            },
        }
        .encode();
        c.on_datagram(h(2), &report, SimTime::from_secs(1));
        let actions = c.take_actions();
        let probes: Vec<_> = actions.iter().filter_map(decode_send).collect();
        let nonce = probes
            .iter()
            .find_map(|(_, m)| match m {
                MgmtMsg::Probe { nonce } => Some(*nonce),
                _ => None,
            })
            .unwrap();
        for host in [h(1), h(2)] {
            let ack = Envelope::Payload {
                id: 1,
                needs_ack: false,
                msg: MgmtMsg::ProbeAck { nonce },
            }
            .encode();
            c.on_datagram(host, &ack, SimTime::from_millis(1020));
        }
        c.poll(SimTime::from_millis(1150));
        assert_eq!(c.chain(service()).unwrap(), &[h(1), h(2)]);
        assert_eq!(c.reconfigurations(), 0);
    }

    #[test]
    fn voluntary_deregistration_promotes_next() {
        // "If the server is a primary, the redirector designates the backup
        // immediately following the primary … as the new primary" (§4.4).
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        let dereg = Envelope::Payload {
            id: 50,
            needs_ack: false,
            msg: MgmtMsg::Deregister {
                service: service(),
                host: h(1),
            },
        }
        .encode();
        c.on_datagram(h(1), &dereg, SimTime::from_secs(2));
        assert_eq!(c.chain(service()).unwrap(), &[h(2)]);
    }

    #[test]
    fn concurrent_failure_report_does_not_double_probe() {
        let mut c = ReplicaController::new(RD, ProbeParams::default());
        c.on_datagram(h(1), &reg(h(1)), SimTime::ZERO);
        c.on_datagram(h(2), &reg(h(2)), SimTime::ZERO);
        c.take_actions();
        for id in [1u64, 2] {
            let report = Envelope::Payload {
                id,
                needs_ack: false,
                msg: MgmtMsg::FailureReport {
                    service: service(),
                    reporter: h(2),
                    observed: 5,
                },
            }
            .encode();
            c.on_datagram(h(2), &report, SimTime::from_secs(1));
        }
        let probes = c
            .take_actions()
            .iter()
            .filter_map(decode_send)
            .filter(|(_, m)| matches!(m, MgmtMsg::Probe { .. }))
            .count();
        assert_eq!(probes, 2, "one round of two probes, not two rounds");
    }
}
