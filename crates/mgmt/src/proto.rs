//! Replica management protocol messages.
//!
//! "The architecture of the management protocol … is patterned after the
//! route management infrastructure for IP, with management daemons running
//! on all HydraNet hosts and the redirectors. The management daemons
//! interact with each other using UDP for idempotent operations and a form
//! of reliable UDP for the message exchanges" (§4.4).
//!
//! Every message travels inside an [`Envelope`] carrying a message id used
//! by the reliable layer ([`crate::reliable`]) for acknowledgement and
//! duplicate suppression.

use hydranet_netsim::packet::IpAddr;
use hydranet_tcp::segment::SockAddr;

use crate::wire::{Reader, WireError, Writer};

/// The well-known UDP port management daemons listen on.
pub const MGMT_PORT: u16 = 7102;

/// A management protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtMsg {
    /// A host server announces a replica bound to a replicated port
    /// (creation of primary/backup servers, §4.4). Chain position is
    /// assigned by the redirector in registration order.
    RegisterReplica {
        /// The replicated service access point (virtual-host address, port).
        service: SockAddr,
        /// The registering host server's real address.
        host: IpAddr,
    },
    /// A replica voluntarily leaves the chain (deletion, §4.4).
    Deregister {
        /// The replicated service access point.
        service: SockAddr,
        /// The leaving host server.
        host: IpAddr,
    },
    /// A replica's failure estimator crossed its threshold: ask the
    /// redirector to reconfigure (§4.3–4.4).
    FailureReport {
        /// The replicated service access point.
        service: SockAddr,
        /// The reporting host server.
        reporter: IpAddr,
        /// Broken-loop signals observed (diagnostics).
        observed: u64,
    },
    /// Redirector → host server: assume this chain position. Carries
    /// everything `setportopt` needs.
    SetRole {
        /// The replicated service access point.
        service: SockAddr,
        /// Chain index: 0 = primary, `i ≥ 1` = i-th backup.
        index: u32,
        /// Ack-channel predecessor (`None` for the primary).
        predecessor: Option<IpAddr>,
        /// Whether a chain successor exists (gates enforced when `true`).
        has_successor: bool,
    },
    /// Redirector → host server: liveness probe during failure
    /// identification ("the failed server needs to be identified", §4.4).
    Probe {
        /// Round identifier echoed in the answer.
        nonce: u64,
    },
    /// Host server → redirector: probe answer.
    ProbeAck {
        /// Echoed round identifier.
        nonce: u64,
    },
    /// Active redirector → standby peer: replicate one table entry at epoch
    /// `(term, seq)`. An empty chain removes the entry.
    TableReplicate {
        /// Epoch term; bumped on every promotion.
        term: u32,
        /// Update sequence within the term.
        seq: u64,
        /// The replicated service access point.
        service: SockAddr,
        /// The new chain, primary first (empty = remove).
        chain: Vec<IpAddr>,
    },
    /// Active redirector → peer: full-table snapshot at epoch `(term, seq)`,
    /// used to resync a demoted ex-primary after a partition heals.
    TableSnapshot {
        /// Epoch term of the snapshot.
        term: u32,
        /// Update sequence within the term.
        seq: u64,
        /// Every `(service, chain)` entry, chains primary first.
        entries: Vec<(SockAddr, Vec<IpAddr>)>,
    },
    /// Receiver → stale sender: your epoch is behind mine; demote and
    /// resync instead of applying your update.
    EpochReject {
        /// The receiver's (newer) epoch term.
        term: u32,
        /// The receiver's update sequence within that term.
        seq: u64,
    },
}

impl MgmtMsg {
    fn tag(&self) -> u8 {
        match self {
            MgmtMsg::RegisterReplica { .. } => 1,
            MgmtMsg::Deregister { .. } => 2,
            MgmtMsg::FailureReport { .. } => 3,
            MgmtMsg::SetRole { .. } => 4,
            MgmtMsg::Probe { .. } => 5,
            MgmtMsg::ProbeAck { .. } => 6,
            MgmtMsg::TableReplicate { .. } => 7,
            MgmtMsg::TableSnapshot { .. } => 8,
            MgmtMsg::EpochReject { .. } => 9,
        }
    }

    fn write_chain(w: &mut Writer, chain: &[IpAddr]) {
        w.u16(chain.len() as u16);
        for host in chain {
            w.addr(*host);
        }
    }

    fn read_chain(r: &mut Reader<'_>) -> Result<Vec<IpAddr>, WireError> {
        let n = r.u16()? as usize;
        let mut chain = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            chain.push(r.addr()?);
        }
        Ok(chain)
    }

    fn write(&self, w: &mut Writer) {
        w.u8(self.tag());
        match *self {
            MgmtMsg::RegisterReplica { service, host } | MgmtMsg::Deregister { service, host } => {
                w.sockaddr(service).addr(host);
            }
            MgmtMsg::FailureReport {
                service,
                reporter,
                observed,
            } => {
                w.sockaddr(service).addr(reporter).u64(observed);
            }
            MgmtMsg::SetRole {
                service,
                index,
                predecessor,
                has_successor,
            } => {
                w.sockaddr(service)
                    .u32(index)
                    .opt_addr(predecessor)
                    .u8(has_successor as u8);
            }
            MgmtMsg::Probe { nonce } | MgmtMsg::ProbeAck { nonce } => {
                w.u64(nonce);
            }
            MgmtMsg::TableReplicate {
                term,
                seq,
                service,
                ref chain,
            } => {
                w.u32(term).u64(seq).sockaddr(service);
                Self::write_chain(w, chain);
            }
            MgmtMsg::TableSnapshot {
                term,
                seq,
                ref entries,
            } => {
                w.u32(term).u64(seq).u16(entries.len() as u16);
                for (service, chain) in entries {
                    w.sockaddr(*service);
                    Self::write_chain(w, chain);
                }
            }
            MgmtMsg::EpochReject { term, seq } => {
                w.u32(term).u64(seq);
            }
        }
    }

    fn read(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        Ok(match tag {
            1 => MgmtMsg::RegisterReplica {
                service: r.sockaddr()?,
                host: r.addr()?,
            },
            2 => MgmtMsg::Deregister {
                service: r.sockaddr()?,
                host: r.addr()?,
            },
            3 => MgmtMsg::FailureReport {
                service: r.sockaddr()?,
                reporter: r.addr()?,
                observed: r.u64()?,
            },
            4 => MgmtMsg::SetRole {
                service: r.sockaddr()?,
                index: r.u32()?,
                predecessor: r.opt_addr()?,
                has_successor: r.u8()? != 0,
            },
            5 => MgmtMsg::Probe { nonce: r.u64()? },
            6 => MgmtMsg::ProbeAck { nonce: r.u64()? },
            7 => MgmtMsg::TableReplicate {
                term: r.u32()?,
                seq: r.u64()?,
                service: r.sockaddr()?,
                chain: Self::read_chain(r)?,
            },
            8 => {
                let term = r.u32()?;
                let seq = r.u64()?;
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let service = r.sockaddr()?;
                    entries.push((service, Self::read_chain(r)?));
                }
                MgmtMsg::TableSnapshot { term, seq, entries }
            }
            9 => MgmtMsg::EpochReject {
                term: r.u32()?,
                seq: r.u64()?,
            },
            _ => return Err(WireError { at: 0 }),
        })
    }
}

/// The envelope the reliable layer wraps every message in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// A payload message; `needs_ack` selects the reliable path.
    Payload {
        /// Sender-assigned message id (unique per sender).
        id: u64,
        /// Whether the receiver must acknowledge.
        needs_ack: bool,
        /// The message.
        msg: MgmtMsg,
    },
    /// Acknowledges receipt of the sender's message `of`.
    Ack {
        /// The acknowledged message id.
        of: u64,
    },
}

impl Envelope {
    /// Serialises the envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Envelope::Payload { id, needs_ack, msg } => {
                w.u8(0xE0).u64(*id).u8(*needs_ack as u8);
                msg.write(&mut w);
            }
            Envelope::Ack { of } => {
                w.u8(0xE1).u64(*of);
            }
        }
        w.into_bytes()
    }

    /// Parses an envelope.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or unknown tags.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        match r.u8()? {
            0xE0 => Ok(Envelope::Payload {
                id: r.u64()?,
                needs_ack: r.u8()? != 0,
                msg: MgmtMsg::read(&mut r)?,
            }),
            0xE1 => Ok(Envelope::Ack { of: r.u64()? }),
            _ => Err(WireError { at: 0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> SockAddr {
        SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
    }

    fn all_messages() -> Vec<MgmtMsg> {
        vec![
            MgmtMsg::RegisterReplica {
                service: service(),
                host: IpAddr::new(10, 0, 2, 1),
            },
            MgmtMsg::Deregister {
                service: service(),
                host: IpAddr::new(10, 0, 2, 1),
            },
            MgmtMsg::FailureReport {
                service: service(),
                reporter: IpAddr::new(10, 0, 3, 1),
                observed: 17,
            },
            MgmtMsg::SetRole {
                service: service(),
                index: 2,
                predecessor: Some(IpAddr::new(10, 0, 2, 1)),
                has_successor: true,
            },
            MgmtMsg::SetRole {
                service: service(),
                index: 0,
                predecessor: None,
                has_successor: false,
            },
            MgmtMsg::Probe { nonce: 0xDEAD },
            MgmtMsg::ProbeAck { nonce: 0xDEAD },
            MgmtMsg::TableReplicate {
                term: 3,
                seq: 41,
                service: service(),
                chain: vec![IpAddr::new(10, 0, 2, 1), IpAddr::new(10, 0, 3, 1)],
            },
            MgmtMsg::TableReplicate {
                term: 0,
                seq: 1,
                service: service(),
                chain: vec![],
            },
            MgmtMsg::TableSnapshot {
                term: 4,
                seq: 0,
                entries: vec![
                    (service(), vec![IpAddr::new(10, 0, 2, 1)]),
                    (
                        SockAddr::new(IpAddr::new(192, 20, 225, 21), 8080),
                        vec![IpAddr::new(10, 0, 3, 1), IpAddr::new(10, 0, 4, 1)],
                    ),
                ],
            },
            MgmtMsg::TableSnapshot {
                term: 1,
                seq: 9,
                entries: vec![],
            },
            MgmtMsg::EpochReject { term: 5, seq: 77 },
        ]
    }

    #[test]
    fn envelope_roundtrip_every_message() {
        for (i, msg) in all_messages().into_iter().enumerate() {
            let env = Envelope::Payload {
                id: i as u64 + 100,
                needs_ack: i % 2 == 0,
                msg,
            };
            let back = Envelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env, "message {i}");
        }
    }

    #[test]
    fn ack_roundtrip() {
        let env = Envelope::Ack { of: 42 };
        assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0x77, 1, 2, 3]).is_err());
        let mut bytes = Envelope::Payload {
            id: 1,
            needs_ack: true,
            msg: MgmtMsg::Probe { nonce: 9 },
        }
        .encode();
        bytes.truncate(bytes.len() - 3);
        assert!(Envelope::decode(&bytes).is_err());
        // Unknown message tag inside a payload envelope.
        let mut w = Writer::new();
        w.u8(0xE0).u64(5).u8(1).u8(99);
        assert!(Envelope::decode(&w.into_bytes()).is_err());
    }
}
