//! The host-server management daemon.
//!
//! One daemon runs on every HydraNet host (§4.4). It registers local
//! replicas with the nearest redirector, answers liveness probes, forwards
//! the failure estimator's reports, and applies `SetRole` directives to the
//! local stack (the kernel in the paper; [`TcpStack`] here).
//!
//! [`TcpStack`]: hydranet_tcp::stack::TcpStack

use std::collections::HashMap;

use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::time::SimTime;
use hydranet_obs::{kinds, Obs};
use hydranet_tcp::detector::DetectorParams;
use hydranet_tcp::ft::{ReplicaMode, ReplicatedPortConfig};
use hydranet_tcp::segment::SockAddr;

use crate::proto::MgmtMsg;
use crate::reliable::ReliableEndpoint;

/// Actions the daemon asks its host node to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonAction {
    /// Transmit a management datagram.
    Send(IpAddr, Vec<u8>),
    /// Bind the service's virtual-host address locally (`v_host`).
    AddVirtualHost(IpAddr),
    /// Apply a replicated-port configuration (`setportopt`).
    ApplyPortOpt {
        /// The local TCP port.
        port: u16,
        /// The configuration to install.
        config: ReplicatedPortConfig,
    },
}

/// The management daemon on one host server.
#[derive(Debug)]
pub struct HostDaemon {
    host: IpAddr,
    redirectors: Vec<IpAddr>,
    endpoint: ReliableEndpoint,
    /// Services this host has registered, with their detector tuning.
    registered: HashMap<SockAddr, DetectorParams>,
    /// Last chain index applied per service (for promotion detection).
    roles: HashMap<SockAddr, u32>,
    actions: Vec<DaemonAction>,
    /// Failure reports sent (diagnostics).
    reports_sent: u64,
    /// Telemetry sink (no-op unless wired via [`set_obs`](Self::set_obs)).
    obs: Obs,
}

impl HostDaemon {
    /// Creates a daemon for the host at `host`, talking to the redirector
    /// at `redirector`.
    pub fn new(host: IpAddr, redirector: IpAddr) -> Self {
        Self::with_id_base(host, redirector, 1)
    }

    /// Like [`new`](Self::new) with an explicit message-id base. A daemon
    /// restarting after a crash must use a fresh base (e.g. the restart
    /// time in nanoseconds) so peers' duplicate filters accept it.
    pub fn with_id_base(host: IpAddr, redirector: IpAddr, id_base: u64) -> Self {
        Self::multi_with_id_base(host, vec![redirector], id_base)
    }

    /// Creates a daemon registering with *several* redirectors — the
    /// Figure 1 deployment, where clients of different ISPs reach the
    /// service through their own redirector. Registrations, departures,
    /// and failure reports are broadcast to all of them; as long as they
    /// observe the same reports symmetrically, their chains converge
    /// (staggered registration fixes the order). Divergence under
    /// asymmetric loss is a limitation inherited from the paper's
    /// single-redirector protocol (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `redirectors` is empty.
    pub fn multi_with_id_base(host: IpAddr, redirectors: Vec<IpAddr>, id_base: u64) -> Self {
        assert!(
            !redirectors.is_empty(),
            "a daemon needs at least one redirector"
        );
        HostDaemon {
            host,
            redirectors,
            endpoint: ReliableEndpoint::new().with_id_base(id_base),
            registered: HashMap::new(),
            roles: HashMap::new(),
            actions: Vec::new(),
            reports_sent: 0,
            obs: Obs::disabled(),
        }
    }

    /// Wires telemetry: registrations, failure reports, and role changes
    /// (in particular primary promotions) are recorded on the timeline.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// This host's address.
    pub fn host(&self) -> IpAddr {
        self.host
    }

    /// The first redirector this daemon registers with.
    pub fn redirector(&self) -> IpAddr {
        self.redirectors[0]
    }

    /// All redirectors this daemon registers with.
    pub fn redirectors(&self) -> &[IpAddr] {
        &self.redirectors
    }

    /// Failure reports sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Drains queued actions.
    pub fn take_actions(&mut self) -> Vec<DaemonAction> {
        std::mem::take(&mut self.actions)
    }

    /// The earliest retransmission deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.endpoint.next_deadline()
    }

    /// Registers a local replica of `service` with the redirector
    /// ("creation of primary/backup servers", §4.4). The chain position —
    /// and with it primary/backup mode — is assigned by the redirector.
    pub fn register_service(&mut self, service: SockAddr, detector: DetectorParams, now: SimTime) {
        self.registered.insert(service, detector);
        self.obs.event(
            now.as_nanos(),
            kinds::REPLICA_REGISTERED,
            &[
                ("host", self.host.to_string()),
                ("service", service.to_string()),
            ],
        );
        self.actions
            .push(DaemonAction::AddVirtualHost(service.addr));
        for rd in self.redirectors.clone() {
            let msg = MgmtMsg::RegisterReplica {
                service,
                host: self.host,
            };
            let out = self.endpoint.send_reliable(rd, msg, now);
            self.actions.push(DaemonAction::Send(out.0, out.1));
        }
    }

    /// Voluntarily removes this host's replica of `service` (§4.4).
    pub fn deregister_service(&mut self, service: SockAddr, now: SimTime) {
        self.registered.remove(&service);
        for rd in self.redirectors.clone() {
            let msg = MgmtMsg::Deregister {
                service,
                host: self.host,
            };
            let out = self.endpoint.send_reliable(rd, msg, now);
            self.actions.push(DaemonAction::Send(out.0, out.1));
        }
    }

    /// Forwards a failure suspicion from the local estimator to the
    /// redirector ("when a server detects a failure, it informs the
    /// redirector", §4.4).
    pub fn report_failure(&mut self, service: SockAddr, observed: u64, now: SimTime) {
        self.obs.event(
            now.as_nanos(),
            kinds::FAILURE_REPORTED,
            &[
                ("reporter", self.host.to_string()),
                ("service", service.to_string()),
                ("observed", observed.to_string()),
            ],
        );
        if self.obs.tracing_enabled() {
            // Instantaneous span recording this report's fan-out: which
            // redirectors the suspicion went to, and the duplicate count
            // that triggered it. Keyed by report ordinal so repeated
            // suspicions stay distinct in the flight recorder.
            let key = format!("report:{}:{}", self.host, self.reports_sent);
            let at = now.as_nanos();
            self.obs
                .span_open(&key, "mgmt", &format!("failure-report {service}"), None, at);
            self.obs
                .span_note(&key, at, "observed", observed.to_string());
            for rd in &self.redirectors {
                self.obs.span_note(&key, at, "redirector", rd.to_string());
            }
            self.obs.span_close(&key, at);
        }
        for rd in self.redirectors.clone() {
            let msg = MgmtMsg::FailureReport {
                service,
                reporter: self.host,
                observed,
            };
            let out = self.endpoint.send_reliable(rd, msg, now);
            self.actions.push(DaemonAction::Send(out.0, out.1));
        }
        self.reports_sent += 1;
    }

    /// Handles an incoming management datagram.
    pub fn on_datagram(&mut self, src: IpAddr, bytes: &[u8], now: SimTime) {
        let (msg, acks) = self.endpoint.on_datagram(src, bytes, now);
        for (dst, bytes) in acks {
            self.actions.push(DaemonAction::Send(dst, bytes));
        }
        let Some(msg) = msg else {
            return;
        };
        match msg {
            MgmtMsg::Probe { nonce } => {
                let out = self
                    .endpoint
                    .send_unreliable(src, MgmtMsg::ProbeAck { nonce });
                self.actions.push(DaemonAction::Send(out.0, out.1));
            }
            MgmtMsg::SetRole {
                service,
                index,
                predecessor,
                has_successor,
            } => {
                let detector = self
                    .registered
                    .get(&service)
                    .copied()
                    .unwrap_or(DetectorParams::DEFAULT);
                let mode = if index == 0 {
                    ReplicaMode::Primary
                } else {
                    ReplicaMode::Backup { index }
                };
                // A backup stepping into index 0 is the paper's promotion
                // moment; the initial primary assignment is not.
                let was_backup = self.roles.insert(service, index).is_some_and(|i| i != 0);
                if index == 0 && was_backup {
                    self.obs.event(
                        now.as_nanos(),
                        kinds::PROMOTED,
                        &[
                            ("host", self.host.to_string()),
                            ("service", service.to_string()),
                        ],
                    );
                }
                self.actions.push(DaemonAction::ApplyPortOpt {
                    port: service.port,
                    config: ReplicatedPortConfig {
                        mode,
                        predecessor,
                        has_successor,
                        detector,
                    },
                });
            }
            // Host daemons do not process controller-side messages.
            _ => {}
        }
    }

    /// Advances retransmission timers.
    pub fn poll(&mut self, now: SimTime) {
        for (dst, bytes) in self.endpoint.poll(now) {
            self.actions.push(DaemonAction::Send(dst, bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Envelope;
    use hydranet_netsim::time::SimDuration;

    const HOST: IpAddr = IpAddr::new(10, 0, 2, 1);
    const RD: IpAddr = IpAddr::new(10, 9, 0, 1);

    fn service() -> SockAddr {
        SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
    }

    fn payload(msg: MgmtMsg) -> Vec<u8> {
        Envelope::Payload {
            id: 7,
            needs_ack: false,
            msg,
        }
        .encode()
    }

    #[test]
    fn registration_emits_vhost_and_register() {
        let mut d = HostDaemon::new(HOST, RD);
        d.register_service(service(), DetectorParams::DEFAULT, SimTime::ZERO);
        let actions = d.take_actions();
        assert!(actions.contains(&DaemonAction::AddVirtualHost(service().addr)));
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                DaemonAction::Send(dst, bytes) => Some((dst, Envelope::decode(bytes).unwrap())),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(*sends[0].0, RD);
        assert!(matches!(
            &sends[0].1,
            Envelope::Payload {
                needs_ack: true,
                msg: MgmtMsg::RegisterReplica { host: HOST, .. },
                ..
            }
        ));
    }

    #[test]
    fn probe_is_answered() {
        let mut d = HostDaemon::new(HOST, RD);
        d.on_datagram(RD, &payload(MgmtMsg::Probe { nonce: 0xAB }), SimTime::ZERO);
        let actions = d.take_actions();
        let ack = actions
            .iter()
            .find_map(|a| match a {
                DaemonAction::Send(dst, bytes) => Some((dst, Envelope::decode(bytes).unwrap())),
                _ => None,
            })
            .expect("reply sent");
        assert_eq!(*ack.0, RD);
        assert!(matches!(
            ack.1,
            Envelope::Payload {
                msg: MgmtMsg::ProbeAck { nonce: 0xAB },
                ..
            }
        ));
    }

    #[test]
    fn set_role_becomes_portopt() {
        let mut d = HostDaemon::new(HOST, RD);
        let custom = DetectorParams::new(7, SimDuration::from_secs(5));
        d.register_service(service(), custom, SimTime::ZERO);
        d.take_actions();
        d.on_datagram(
            RD,
            &payload(MgmtMsg::SetRole {
                service: service(),
                index: 1,
                predecessor: Some(IpAddr::new(10, 0, 9, 9)),
                has_successor: true,
            }),
            SimTime::ZERO,
        );
        let actions = d.take_actions();
        let opt = actions
            .iter()
            .find_map(|a| match a {
                DaemonAction::ApplyPortOpt { port, config } => Some((*port, config.clone())),
                _ => None,
            })
            .expect("portopt applied");
        assert_eq!(opt.0, 80);
        assert_eq!(opt.1.mode, ReplicaMode::Backup { index: 1 });
        assert_eq!(opt.1.predecessor, Some(IpAddr::new(10, 0, 9, 9)));
        assert!(opt.1.has_successor);
        assert_eq!(opt.1.detector, custom, "detector params from setportopt");
    }

    #[test]
    fn failure_report_is_reliable() {
        let mut d = HostDaemon::new(HOST, RD);
        d.report_failure(service(), 9, SimTime::ZERO);
        assert_eq!(d.reports_sent(), 1);
        d.take_actions();
        // Unacked: poll retransmits.
        d.poll(SimTime::from_secs(1));
        let actions = d.take_actions();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, DaemonAction::Send(dst, _) if *dst == RD)),
            "no retransmission: {actions:?}"
        );
        assert!(d.next_deadline().is_some());
    }

    #[test]
    fn failure_report_span_names_redirectors() {
        let obs = Obs::enabled();
        obs.enable_tracing(16);
        let mut d = HostDaemon::multi_with_id_base(HOST, vec![RD, IpAddr::new(10, 9, 0, 2)], 1);
        d.set_obs(obs.clone());
        d.report_failure(service(), 4, SimTime::from_secs(2));
        let dump = obs.flight_recorder_json(&[]);
        for needle in ["failure-report", "10.9.0.1", "10.9.0.2", "\"observed\""] {
            assert!(dump.contains(needle), "missing {needle} in {dump}");
        }
    }

    #[test]
    fn deregister_sends_message() {
        let mut d = HostDaemon::new(HOST, RD);
        d.register_service(service(), DetectorParams::DEFAULT, SimTime::ZERO);
        d.take_actions();
        d.deregister_service(service(), SimTime::from_secs(1));
        let actions = d.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            DaemonAction::Send(_, bytes)
                if matches!(Envelope::decode(bytes),
                    Ok(Envelope::Payload { msg: MgmtMsg::Deregister { .. }, .. }))
        )));
    }
}
