//! Tiny binary reader/writer for the management protocol's wire format.

use hydranet_netsim::packet::IpAddr;
use hydranet_tcp::segment::SockAddr;

/// Serialisation buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an address (4 bytes).
    pub fn addr(&mut self, a: IpAddr) -> &mut Self {
        self.u32(a.to_bits())
    }

    /// Appends a socket address (6 bytes).
    pub fn sockaddr(&mut self, s: SockAddr) -> &mut Self {
        self.addr(s.addr).u16(s.port)
    }

    /// Appends an optional address: presence byte + 4 bytes.
    pub fn opt_addr(&mut self, a: Option<IpAddr>) -> &mut Self {
        match a {
            Some(a) => self.u8(1).addr(a),
            None => self.u8(0),
        }
    }
}

/// Deserialisation cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error returned when a management message fails to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which parsing failed.
    pub at: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed management message at byte {}", self.at)
    }
}

impl std::error::Error for WireError {}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an address.
    pub fn addr(&mut self) -> Result<IpAddr, WireError> {
        Ok(IpAddr::from_bits(self.u32()?))
    }

    /// Reads a socket address.
    pub fn sockaddr(&mut self) -> Result<SockAddr, WireError> {
        Ok(SockAddr::new(self.addr()?, self.u16()?))
    }

    /// Reads an optional address.
    pub fn opt_addr(&mut self) -> Result<Option<IpAddr>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.addr()?)),
        }
    }

    /// Whether all bytes have been consumed.
    #[allow(dead_code)] // exercised in tests; part of the wire API surface
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(u64::MAX - 1)
            .addr(IpAddr::new(1, 2, 3, 4))
            .sockaddr(SockAddr::new(IpAddr::new(9, 9, 9, 9), 80))
            .opt_addr(Some(IpAddr::new(5, 6, 7, 8)))
            .opt_addr(None);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.addr().unwrap(), IpAddr::new(1, 2, 3, 4));
        assert_eq!(
            r.sockaddr().unwrap(),
            SockAddr::new(IpAddr::new(9, 9, 9, 9), 80)
        );
        assert_eq!(r.opt_addr().unwrap(), Some(IpAddr::new(5, 6, 7, 8)));
        assert_eq!(r.opt_addr().unwrap(), None);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_errors_carry_offset() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u16().unwrap(), 0x0102);
        let err = r.u32().unwrap_err();
        assert_eq!(err.at, 2);
        assert!(err.to_string().contains("byte 2"));
    }
}
