//! Declarative fault plans: scripted chaos for a built [`System`].
//!
//! A [`FaultPlan`] is an ordered list of timed [`FaultAction`]s — node
//! crashes and recoveries, link outages, and link impairments (loss,
//! reordering, duplication, corruption). [`FaultPlan::apply`] schedules the
//! whole script onto the system's simulator in one shot, records one
//! `faults.injected` timeline event per action, and bumps per-class
//! counters, so every injected fault is visible in the telemetry report
//! alongside the recovery it provoked.
//!
//! Plans are plain data: building one performs no side effects, so the same
//! plan can be applied to many seeds (the chaos soak does exactly that).
//!
//! # Examples
//!
//! Crash the primary for 200 ms and flap the client link, starting half a
//! second in:
//!
//! ```
//! use hydranet_core::faults::FaultPlan;
//! use hydranet_core::prelude::*;
//! use hydranet_netsim::link::LinkId;
//!
//! let plan = FaultPlan::new()
//!     .crash_for(NodeId::from_index(2), SimTime::from_millis(500), SimDuration::from_millis(200))
//!     .link_flap(LinkId::from_index(0), SimTime::from_millis(600), SimDuration::from_millis(50));
//! assert_eq!(plan.len(), 4);
//! ```

use hydranet_netsim::link::{Impairments, LinkId, LossModel};
use hydranet_netsim::node::NodeId;
use hydranet_netsim::sim::Simulator;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_obs::kinds;

use crate::system::System;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Fail-stop crash of a node (client, host server, redirector, router).
    CrashNode(NodeId),
    /// Recovery of a previously crashed node.
    RecoverNode(NodeId),
    /// Takes a link down, dropping everything queued or in flight on it.
    LinkDown(LinkId),
    /// Brings a link back up.
    LinkUp(LinkId),
    /// Replaces a link's impairments (loss, reordering, duplication,
    /// corruption). Use [`Impairments::NONE`] to heal.
    SetImpairments {
        /// The link to impair.
        link: LinkId,
        /// The new impairment set.
        imp: Impairments,
    },
}

impl FaultAction {
    /// Short class tag used in counters and timeline events.
    pub fn class(&self) -> &'static str {
        match self {
            FaultAction::CrashNode(_) => "crash",
            FaultAction::RecoverNode(_) => "recover",
            FaultAction::LinkDown(_) => "link_down",
            FaultAction::LinkUp(_) => "link_up",
            FaultAction::SetImpairments { .. } => "impair",
        }
    }

    /// Human-readable target description.
    fn target(&self) -> String {
        match self {
            FaultAction::CrashNode(n) | FaultAction::RecoverNode(n) => n.to_string(),
            FaultAction::LinkDown(l) | FaultAction::LinkUp(l) => l.to_string(),
            FaultAction::SetImpairments { link, imp } => format!(
                "{link} loss={:?} reorder_p={} dup_p={} corrupt_p={}",
                imp.loss, imp.reorder_p, imp.duplicate_p, imp.corrupt_p
            ),
        }
    }
}

/// A [`FaultAction`] with its injection time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered, timed script of faults. See the module docs for an example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds one action at `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Crashes `node` at `at` (no recovery).
    pub fn crash(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, FaultAction::CrashNode(node))
    }

    /// Recovers `node` at `at`.
    pub fn recover(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, FaultAction::RecoverNode(node))
    }

    /// Crashes `node` at `at` and recovers it `downtime` later.
    pub fn crash_for(self, node: NodeId, at: SimTime, downtime: SimDuration) -> Self {
        self.crash(node, at)
            .recover(node, at.saturating_add(downtime))
    }

    /// Takes `link` down at `at` and restores it `downtime` later.
    pub fn link_flap(self, link: LinkId, at: SimTime, downtime: SimDuration) -> Self {
        self.at(at, FaultAction::LinkDown(link))
            .at(at.saturating_add(downtime), FaultAction::LinkUp(link))
    }

    /// Sets `link`'s impairments at `at`.
    pub fn impair(self, link: LinkId, imp: Impairments, at: SimTime) -> Self {
        self.at(at, FaultAction::SetImpairments { link, imp })
    }

    /// Sets `link`'s impairments at `at` and heals them (back to
    /// [`Impairments::NONE`]) `duration` later.
    pub fn impair_for(
        self,
        link: LinkId,
        imp: Impairments,
        at: SimTime,
        duration: SimDuration,
    ) -> Self {
        self.impair(link, imp, at).at(
            at.saturating_add(duration),
            FaultAction::SetImpairments {
                link,
                imp: Impairments::NONE,
            },
        )
    }

    /// A loss burst on `link`: Bernoulli loss with probability `p` from
    /// `at` for `duration`, then clean again. Pointed at the links that
    /// carry the acknowledgement channel, this models the §4.3 "lossy ack
    /// channel" failure class.
    pub fn loss_burst(self, link: LinkId, p: f64, at: SimTime, duration: SimDuration) -> Self {
        self.impair_for(
            link,
            Impairments::NONE.with_loss(LossModel::Bernoulli { p }),
            at,
            duration,
        )
    }

    /// Partitions `group` from the rest of the topology at `at`, healing
    /// `heal_after` later: every link with exactly one endpoint inside
    /// `group` goes down, links internal to either side stay up.
    pub fn partition(
        self,
        sim: &Simulator,
        group: &[NodeId],
        at: SimTime,
        heal_after: SimDuration,
    ) -> Self {
        let links = partition_links(sim, group);
        links
            .into_iter()
            .fold(self, |plan, link| plan.link_flap(link, at, heal_after))
    }

    /// Schedules every action onto the system's simulator and records the
    /// injections in telemetry: one [`kinds::FAULT_INJECTED`] timeline
    /// event per action (stamped with its scheduled fire time) plus
    /// `faults.injected` / `faults.injected.<class>` counters.
    pub fn apply(&self, system: &mut System) {
        let obs = system.obs().clone();
        for FaultEvent { at, action } in &self.events {
            match action {
                FaultAction::CrashNode(node) => system.sim.schedule_crash(*node, *at),
                FaultAction::RecoverNode(node) => system.sim.schedule_recover(*node, *at),
                FaultAction::LinkDown(link) => system.sim.schedule_link_down(*link, *at),
                FaultAction::LinkUp(link) => system.sim.schedule_link_up(*link, *at),
                FaultAction::SetImpairments { link, imp } => {
                    system.sim.schedule_impairments(*link, imp.clone(), *at);
                }
            }
            obs.event(
                at.as_nanos(),
                kinds::FAULT_INJECTED,
                &[
                    ("class", action.class().to_string()),
                    ("target", action.target()),
                ],
            );
            obs.add("faults.injected", 1);
            obs.add(&format!("faults.injected.{}", action.class()), 1);
        }
    }
}

/// The links with exactly one endpoint in `group` — the cut set a
/// group-based partition must sever.
pub fn partition_links(sim: &Simulator, group: &[NodeId]) -> Vec<LinkId> {
    let inside = |n: NodeId| group.contains(&n);
    (0..sim.link_count())
        .map(LinkId::from_index)
        .filter(|&l| {
            let [a, b] = sim.link_endpoints(l);
            inside(a) != inside(b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_in_order() {
        let n = NodeId::from_index(3);
        let l = LinkId::from_index(1);
        let plan = FaultPlan::new()
            .crash_for(n, SimTime::from_millis(10), SimDuration::from_millis(5))
            .link_flap(l, SimTime::from_millis(20), SimDuration::from_millis(2))
            .loss_burst(
                l,
                0.5,
                SimTime::from_millis(30),
                SimDuration::from_millis(1),
            );
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.events()[0].action, FaultAction::CrashNode(n));
        assert_eq!(plan.events()[1].at, SimTime::from_millis(15));
        assert_eq!(plan.events()[1].action, FaultAction::RecoverNode(n));
        assert_eq!(plan.events()[2].action, FaultAction::LinkDown(l));
        assert_eq!(plan.events()[3].action, FaultAction::LinkUp(l));
        assert!(matches!(
            plan.events()[4].action,
            FaultAction::SetImpairments { .. }
        ));
        assert_eq!(
            plan.events()[5].action,
            FaultAction::SetImpairments {
                link: l,
                imp: Impairments::NONE
            }
        );
    }

    #[test]
    fn class_tags_are_stable() {
        assert_eq!(
            FaultAction::CrashNode(NodeId::from_index(0)).class(),
            "crash"
        );
        assert_eq!(
            FaultAction::RecoverNode(NodeId::from_index(0)).class(),
            "recover"
        );
        assert_eq!(
            FaultAction::LinkDown(LinkId::from_index(0)).class(),
            "link_down"
        );
        assert_eq!(
            FaultAction::LinkUp(LinkId::from_index(0)).class(),
            "link_up"
        );
        assert_eq!(
            FaultAction::SetImpairments {
                link: LinkId::from_index(0),
                imp: Impairments::NONE
            }
            .class(),
            "impair"
        );
    }
}
