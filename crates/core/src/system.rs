//! Assembling a HydraNet internetwork: clients, routers, redirectors, host
//! servers, and service deployment, with automatic route configuration.

use std::collections::{HashMap, VecDeque};

use hydranet_mgmt::failover::{PairConfig, ProbeParams};
use hydranet_netsim::link::{LinkId, LinkParams};
use hydranet_netsim::node::{IfaceId, NodeId, NodeParams};
use hydranet_netsim::packet::IpAddr;
use hydranet_netsim::routing::{Prefix, RouterNode};
use hydranet_netsim::sim::Simulator;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_netsim::topology::TopologyBuilder;
use hydranet_obs::Obs;
use hydranet_tcp::conn::TcpConfig;
use hydranet_tcp::detector::DetectorParams;
use hydranet_tcp::segment::{Quad, SockAddr};
use hydranet_tcp::stack::{EphemeralPortsExhausted, SocketApp};

use crate::host::{ClientHost, HostServer};
use crate::redirector::ManagedRedirector;

/// What kind of node occupies a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An unmodified client host.
    Client,
    /// A HydraNet host server.
    HostServer,
    /// A managed redirector.
    Redirector,
    /// A plain IP router.
    Router,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    kind: NodeKind,
    addr: Option<IpAddr>,
}

/// A declared active/standby redirector pair sharing a virtual address.
#[derive(Debug, Clone)]
struct PairSpec {
    primary: NodeId,
    backup: NodeId,
    vip: IpAddr,
    probe: ProbeParams,
    extra_virtuals: Vec<IpAddr>,
}

/// Deployment description of one fault-tolerant service.
#[derive(Debug, Clone)]
pub struct FtServiceSpec {
    /// The service access point clients connect to (virtual-host address
    /// and well-known port).
    pub service: SockAddr,
    /// Host servers to run replicas, in desired chain order (first becomes
    /// the primary).
    pub chain: Vec<NodeId>,
    /// Failure-estimator tuning passed to `setportopt`.
    pub detector: DetectorParams,
    /// When the first replica registers.
    pub registration_start: SimTime,
    /// Spacing between successive replicas' registrations (registration
    /// order defines the chain).
    pub registration_stagger: SimDuration,
}

impl FtServiceSpec {
    /// Creates a spec with default registration timing (start at 1 ms,
    /// 20 ms stagger).
    pub fn new(service: SockAddr, chain: Vec<NodeId>, detector: DetectorParams) -> Self {
        FtServiceSpec {
            service,
            chain,
            detector,
            registration_start: SimTime::from_millis(1),
            registration_stagger: SimDuration::from_millis(20),
        }
    }
}

/// Builder for a complete HydraNet system.
pub struct SystemBuilder {
    topo: TopologyBuilder,
    nodes: Vec<NodeInfo>,
    links: Vec<(NodeId, NodeId, IfaceId, IfaceId)>,
    default_tcp: TcpConfig,
    probe_params: ProbeParams,
    coalesce_node_timers: bool,
    pairs: Vec<PairSpec>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .finish()
    }
}

impl SystemBuilder {
    /// Creates a builder; `default_tcp` is used by every stack.
    pub fn new(default_tcp: TcpConfig) -> Self {
        SystemBuilder {
            topo: TopologyBuilder::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            default_tcp,
            probe_params: ProbeParams::default(),
            coalesce_node_timers: false,
            pairs: Vec::new(),
        }
    }

    /// Enables node-timer coalescing on every client, host server, and
    /// redirector in the built system: a node re-arms its simulator timer
    /// only when its next deadline moved *earlier* than one already
    /// pending, instead of filing a fresh calendar entry on every flush.
    /// This collapses the per-packet chains of stale wakeups that dominate
    /// the event count at many-flow scale (see DESIGN.md §5c). Off by
    /// default because the skipped wakeups are counted simulator events
    /// and the repo's pinned fingerprints include event counts.
    pub fn set_coalesce_node_timers(&mut self, on: bool) {
        self.coalesce_node_timers = on;
    }

    /// Overrides the failure-identification probe parameters used by
    /// redirectors added *after* this call.
    pub fn set_probe_params(&mut self, params: ProbeParams) {
        self.probe_params = params;
    }

    /// Adds an unmodified client host.
    pub fn add_client(&mut self, name: &str, addr: IpAddr) -> NodeId {
        self.add_client_with(name, addr, self.default_tcp.clone(), NodeParams::INSTANT)
    }

    /// Adds a client host with specific TCP configuration and CPU cost.
    pub fn add_client_with(
        &mut self,
        name: &str,
        addr: IpAddr,
        cfg: TcpConfig,
        params: NodeParams,
    ) -> NodeId {
        let id = self.topo.add_node(ClientHost::new(name, addr, cfg), params);
        self.note(id, NodeKind::Client, Some(addr));
        id
    }

    /// Adds a host server managed via the redirector at `redirector_addr`.
    pub fn add_host_server(&mut self, name: &str, addr: IpAddr, redirector_addr: IpAddr) -> NodeId {
        self.add_host_server_with(
            name,
            addr,
            redirector_addr,
            self.default_tcp.clone(),
            NodeParams::INSTANT,
        )
    }

    /// Adds a host server managed via several redirectors (Figure 1's
    /// multi-ISP deployment).
    pub fn add_host_server_multi(
        &mut self,
        name: &str,
        addr: IpAddr,
        redirectors: Vec<IpAddr>,
    ) -> NodeId {
        let id = self.topo.add_node(
            HostServer::with_redirectors(name, addr, redirectors, self.default_tcp.clone()),
            NodeParams::INSTANT,
        );
        self.note(id, NodeKind::HostServer, Some(addr));
        id
    }

    /// Adds a host server with specific TCP configuration and CPU cost.
    pub fn add_host_server_with(
        &mut self,
        name: &str,
        addr: IpAddr,
        redirector_addr: IpAddr,
        cfg: TcpConfig,
        params: NodeParams,
    ) -> NodeId {
        let id = self
            .topo
            .add_node(HostServer::new(name, addr, redirector_addr, cfg), params);
        self.note(id, NodeKind::HostServer, Some(addr));
        id
    }

    /// Adds a managed redirector.
    pub fn add_redirector(&mut self, name: &str, addr: IpAddr) -> NodeId {
        self.add_redirector_with(name, addr, NodeParams::INSTANT)
    }

    /// Adds a managed redirector with a CPU cost (the paper's redirector
    /// was a deliberately slow 486).
    pub fn add_redirector_with(&mut self, name: &str, addr: IpAddr, params: NodeParams) -> NodeId {
        let id = self.topo.add_node(
            ManagedRedirector::new(name, addr, self.probe_params),
            params,
        );
        self.note(id, NodeKind::Redirector, Some(addr));
        id
    }

    /// Adds an active/standby redirector *pair* sharing the virtual
    /// address `vip`: host daemons and clients address only the VIP and
    /// never learn which member serves it. The first member starts
    /// active; the standby probes it (with this builder's current probe
    /// parameters) and promotes itself on failure, flooding a route
    /// announcement that re-aims every adjacent router's anycast group
    /// at the survivor. Table updates replicate active → standby under a
    /// monotonic epoch, so a healed ex-active's stale updates are
    /// rejected and it resyncs as the new standby.
    ///
    /// Routers that should flip must be linked to *both* members.
    /// Returns `(primary, backup)`.
    ///
    /// # Panics
    ///
    /// Panics if `vip` collides with a node address.
    pub fn add_redirector_pair(
        &mut self,
        primary_name: &str,
        primary_addr: IpAddr,
        backup_name: &str,
        backup_addr: IpAddr,
        vip: IpAddr,
    ) -> (NodeId, NodeId) {
        assert!(
            !self.nodes.iter().any(|n| n.addr == Some(vip)),
            "virtual address {vip} collides with a node address"
        );
        let primary = self.add_redirector(primary_name, primary_addr);
        let backup = self.add_redirector(backup_name, backup_addr);
        self.pairs.push(PairSpec {
            primary,
            backup,
            vip,
            probe: self.probe_params,
            extra_virtuals: Vec::new(),
        });
        (primary, backup)
    }

    /// Routes `addr` — typically a service access point's virtual-host
    /// address, which belongs to no node — exactly like the pair's VIP:
    /// toward the initially-active member, re-aimed by the anycast flip
    /// on failover. Needed whenever a plain router sits between clients
    /// and the pair, since automatic routing only covers node addresses.
    ///
    /// # Panics
    ///
    /// Panics if no pair with virtual address `vip` was added.
    pub fn route_via_pair(&mut self, vip: IpAddr, addr: IpAddr) {
        let pair = self
            .pairs
            .iter_mut()
            .find(|p| p.vip == vip)
            .expect("no redirector pair with that VIP");
        pair.extra_virtuals.push(addr);
    }

    /// Adds a plain IP router (no redirection).
    pub fn add_router(&mut self, name: &str) -> NodeId {
        let id = self
            .topo
            .add_node(RouterNode::new(name), NodeParams::INSTANT);
        self.note(id, NodeKind::Router, None);
        id
    }

    /// Adds a plain IP router with a CPU cost.
    pub fn add_router_with(&mut self, name: &str, params: NodeParams) -> NodeId {
        let id = self.topo.add_node(RouterNode::new(name), params);
        self.note(id, NodeKind::Router, None);
        id
    }

    /// Connects two nodes.
    ///
    /// # Panics
    ///
    /// Panics if a host-type node (client/host server) would gain a second
    /// interface — hosts are single-homed.
    pub fn link(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> LinkId {
        for &n in &[a, b] {
            let host_like = matches!(
                self.nodes[n.index()].kind,
                NodeKind::Client | NodeKind::HostServer
            );
            if host_like {
                let existing = self
                    .links
                    .iter()
                    .filter(|&&(x, y, _, _)| x == n || y == n)
                    .count();
                assert_eq!(existing, 0, "host {n} must be single-homed");
            }
        }
        let (link, ia, ib) = self.topo.connect(a, b, params);
        self.links.push((a, b, ia, ib));
        link
    }

    /// Deploys a fault-tolerant service: installs listeners and virtual
    /// hosts on every chain member and schedules their staggered
    /// registrations with the redirector.
    ///
    /// `app_factory` is invoked once per accepted connection per replica;
    /// the applications must be deterministic for replication to hold.
    ///
    /// # Panics
    ///
    /// Panics if any chain member is not a host server.
    pub fn deploy_ft_service<F>(&mut self, spec: &FtServiceSpec, app_factory: F)
    where
        F: Fn(Quad) -> Box<dyn SocketApp> + Clone + 'static,
    {
        for (i, &node) in spec.chain.iter().enumerate() {
            assert_eq!(
                self.nodes[node.index()].kind,
                NodeKind::HostServer,
                "chain member {node} is not a host server"
            );
            let host = self.topo.node_mut::<HostServer>(node);
            host.stack_mut().add_local_addr(spec.service.addr);
            let factory = app_factory.clone();
            host.stack_mut()
                .listen(spec.service.port, move |quad| factory(quad));
            let at = spec
                .registration_start
                .saturating_add(spec.registration_stagger * i as u64);
            host.schedule_registration(spec.service, spec.detector, at);
        }
    }

    /// Runs arbitrary configuration against a node already added (e.g.
    /// installing listeners on a host, or static redirector-table entries).
    ///
    /// # Panics
    ///
    /// Panics if the node is not of type `T`.
    pub fn configure<T: hydranet_netsim::node::Node>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T),
    ) {
        f(self.topo.node_mut::<T>(id));
    }

    /// Deploys a *scaled* (non-fault-tolerant) service in HydraNet's
    /// original load-diffusion mode (§3): the redirector forwards each
    /// matching packet to the nearest replica. Entries are installed
    /// statically; replicas get listeners and the virtual host.
    ///
    /// # Panics
    ///
    /// Panics if `redirector` is not a redirector or a replica is not a
    /// host server.
    pub fn deploy_scaled_service<F>(
        &mut self,
        redirector: NodeId,
        service: SockAddr,
        replicas: &[(NodeId, u32)],
        app_factory: F,
    ) where
        F: Fn(Quad) -> Box<dyn SocketApp> + Clone + 'static,
    {
        let locs: Vec<hydranet_redirect::table::ReplicaLoc> = replicas
            .iter()
            .map(|&(node, metric)| {
                assert_eq!(self.nodes[node.index()].kind, NodeKind::HostServer);
                hydranet_redirect::table::ReplicaLoc {
                    host: self.nodes[node.index()].addr.expect("host has address"),
                    metric,
                }
            })
            .collect();
        self.configure::<ManagedRedirector>(redirector, move |r| {
            r.engine_mut().table_mut().install(
                service,
                hydranet_redirect::table::ServiceEntry::Scaled { replicas: locs },
            );
        });
        for &(node, _) in replicas {
            let host = self.topo.node_mut::<HostServer>(node);
            host.stack_mut().add_local_addr(service.addr);
            let factory = app_factory.clone();
            host.stack_mut()
                .listen(service.port, move |quad| factory(quad));
        }
    }

    /// Finishes building: computes shortest-path routes for every router
    /// and redirector, wires the unified telemetry layer into every node,
    /// then constructs the simulator.
    pub fn build(self, seed: u64) -> System {
        let SystemBuilder {
            mut topo,
            nodes,
            links,
            coalesce_node_timers,
            pairs,
            ..
        } = self;
        let obs = Obs::enabled();

        // Adjacency: node -> [(neighbor, local iface)].
        let mut adj: HashMap<NodeId, Vec<(NodeId, IfaceId)>> = HashMap::new();
        for &(a, b, ia, ib) in &links {
            adj.entry(a).or_default().push((b, ia));
            adj.entry(b).or_default().push((a, ib));
        }

        // For every routing node, BFS to find the egress interface toward
        // every addressed node.
        for (idx, info) in nodes.iter().enumerate() {
            let router_id = NodeId::from_index(idx);
            if !matches!(info.kind, NodeKind::Router | NodeKind::Redirector) {
                continue;
            }
            let mut first_hop: HashMap<NodeId, IfaceId> = HashMap::new();
            let mut queue = VecDeque::new();
            for &(n, iface) in adj.get(&router_id).into_iter().flatten() {
                if first_hop.insert(n, iface).is_none() {
                    queue.push_back(n);
                }
            }
            while let Some(at) = queue.pop_front() {
                let via = first_hop[&at];
                for &(next, _) in adj.get(&at).into_iter().flatten() {
                    if next != router_id && !first_hop.contains_key(&next) {
                        first_hop.insert(next, via);
                        queue.push_back(next);
                    }
                }
            }
            // Install host routes for every reachable addressed node.
            for (tidx, target) in nodes.iter().enumerate() {
                let target_id = NodeId::from_index(tidx);
                if target_id == router_id {
                    continue;
                }
                let (Some(addr), Some(&iface)) = (target.addr, first_hop.get(&target_id)) else {
                    continue;
                };
                match info.kind {
                    NodeKind::Router => {
                        topo.node_mut::<RouterNode>(router_id)
                            .routes_mut()
                            .add(Prefix::host(addr), iface);
                    }
                    NodeKind::Redirector => {
                        topo.node_mut::<ManagedRedirector>(router_id)
                            .engine_mut()
                            .routes_mut()
                            .add(Prefix::host(addr), iface);
                    }
                    _ => unreachable!(),
                }
            }
            // Each pair's VIP routes like a host attached to the
            // initially-active member; pair members themselves treat the
            // VIP as local, so they get no route for it.
            for pair in &pairs {
                if router_id == pair.primary || router_id == pair.backup {
                    continue;
                }
                let Some(&iface) = first_hop.get(&pair.primary) else {
                    continue;
                };
                for vaddr in std::iter::once(pair.vip).chain(pair.extra_virtuals.iter().copied()) {
                    match info.kind {
                        NodeKind::Router => {
                            topo.node_mut::<RouterNode>(router_id)
                                .routes_mut()
                                .add(Prefix::host(vaddr), iface);
                        }
                        NodeKind::Redirector => {
                            topo.node_mut::<ManagedRedirector>(router_id)
                                .engine_mut()
                                .routes_mut()
                                .add(Prefix::host(vaddr), iface);
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }

        // Wire each declared redirector pair: the members probe each other
        // and announce promotions out of every interface they own, and
        // each router linked to *both* members gets the two ifaces as its
        // anycast group, with all group routes initially aimed at the
        // primary (BFS tie-breaking may have preferred the backup).
        for pair in &pairs {
            let p_addr = nodes[pair.primary.index()].addr.expect("redirector addr");
            let b_addr = nodes[pair.backup.index()].addr.expect("redirector addr");
            let member_ifaces = |id: NodeId| -> Vec<IfaceId> {
                links
                    .iter()
                    .filter_map(|&(a, b, ia, ib)| {
                        if a == id {
                            Some(ia)
                        } else if b == id {
                            Some(ib)
                        } else {
                            None
                        }
                    })
                    .collect()
            };
            topo.node_mut::<ManagedRedirector>(pair.primary)
                .configure_pair(
                    pair.vip,
                    PairConfig {
                        peer: b_addr,
                        initially_active: true,
                        probe: pair.probe,
                    },
                    member_ifaces(pair.primary),
                );
            topo.node_mut::<ManagedRedirector>(pair.backup)
                .configure_pair(
                    pair.vip,
                    PairConfig {
                        peer: p_addr,
                        initially_active: false,
                        probe: pair.probe,
                    },
                    member_ifaces(pair.backup),
                );
            for (idx, info) in nodes.iter().enumerate() {
                if info.kind != NodeKind::Router {
                    continue;
                }
                let rid = NodeId::from_index(idx);
                let mut to_primary = None;
                let mut to_backup = None;
                for &(a, b, ia, ib) in &links {
                    if a == rid && b == pair.primary {
                        to_primary = Some(ia);
                    } else if b == rid && a == pair.primary {
                        to_primary = Some(ib);
                    }
                    if a == rid && b == pair.backup {
                        to_backup = Some(ia);
                    } else if b == rid && a == pair.backup {
                        to_backup = Some(ib);
                    }
                }
                let (Some(pi), Some(bi)) = (to_primary, to_backup) else {
                    continue;
                };
                let group = vec![pi, bi];
                let router = topo.node_mut::<RouterNode>(rid);
                router.set_anycast_group(group.clone());
                router.routes_mut().retarget(&group, pi);
            }
        }

        // Wire the shared telemetry handle into every node so metrics and
        // timeline events from all layers land in one registry.
        for (idx, info) in nodes.iter().enumerate() {
            let id = NodeId::from_index(idx);
            match info.kind {
                NodeKind::Client => {
                    let node = topo.node_mut::<ClientHost>(id);
                    node.set_obs(obs.clone());
                    node.set_coalesce_timers(coalesce_node_timers);
                }
                NodeKind::HostServer => {
                    let node = topo.node_mut::<HostServer>(id);
                    node.set_obs(obs.clone());
                    node.set_coalesce_timers(coalesce_node_timers);
                }
                NodeKind::Redirector => {
                    let node = topo.node_mut::<ManagedRedirector>(id);
                    node.set_obs(obs.clone());
                    node.set_coalesce_timers(coalesce_node_timers);
                }
                NodeKind::Router => {}
            }
        }

        let mut sim = topo.into_simulator(seed);
        sim.set_obs(obs.clone());
        System { sim, nodes, obs }
    }

    fn note(&mut self, id: NodeId, kind: NodeKind, addr: Option<IpAddr>) {
        debug_assert_eq!(id.index(), self.nodes.len());
        if let Some(a) = addr {
            assert!(
                !self.nodes.iter().any(|n| n.addr == Some(a)),
                "duplicate host address {a}"
            );
        }
        self.nodes.push(NodeInfo { kind, addr });
    }
}

/// A built HydraNet system: the simulator plus node metadata.
pub struct System {
    /// The underlying simulator.
    pub sim: Simulator,
    nodes: Vec<NodeInfo>,
    obs: Obs,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System").field("sim", &self.sim).finish()
    }
}

impl System {
    /// The kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// The unified telemetry handle shared by every node in the system.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The measured fail-over detection latency — the span from the first
    /// `tcp.detector.suspected` event to the first promotion — in
    /// nanoseconds, once both have happened.
    pub fn detection_latency_nanos(&self) -> Option<u64> {
        self.obs.detection_latency_nanos()
    }

    /// Turns on the causal tracer (spans + flight recorder) for every node
    /// in the system, with a ring of `capacity` retired spans. Tracing is
    /// purely observational: it draws nothing from the simulation RNG, so
    /// enabling it cannot perturb a deterministic run.
    pub fn enable_tracing(&self, capacity: usize) {
        self.obs.enable_tracing(capacity);
    }

    /// Turns on the per-subsystem event-attribution profiler: every
    /// simulator event is classified (tcp data / acks / ack-channel /
    /// timers / mgmt / redirector) and its wall-clock cost bucketed.
    /// Redirector nodes are marked so traffic *through* them attributes to
    /// the redirector, and the ack-channel UDP port is taken from
    /// [`hydranet_tcp::ft::ACK_CHANNEL_PORT`].
    pub fn enable_profiler(&mut self) {
        let redirectors: Vec<NodeId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Redirector)
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        let p = self.sim.profiler_mut();
        p.set_ack_channel_port(hydranet_tcp::ft::ACK_CHANNEL_PORT);
        for id in redirectors {
            p.mark_redirector(id);
        }
        p.set_enabled(true);
    }

    /// Serialises the full telemetry report (metrics registry + failover
    /// timeline) as JSON, tagged with run metadata. Bench binaries write
    /// this next to their numeric output.
    pub fn telemetry_json(&self, scenario: &str) -> String {
        let stats = self.sim.stats();
        self.obs.to_json_with_meta(&[
            ("scenario", scenario.to_string()),
            ("sim_now_nanos", self.sim.now().as_nanos().to_string()),
            ("events_processed", stats.events_processed.to_string()),
            ("trace_dropped", stats.trace_dropped.to_string()),
            (
                "flight_recorder_evicted",
                self.obs.trace_evicted().to_string(),
            ),
        ])
    }

    /// The address of `node`, if it has one.
    pub fn addr(&self, node: NodeId) -> Option<IpAddr> {
        self.nodes[node.index()].addr
    }

    /// Borrows a client host.
    pub fn client(&self, id: NodeId) -> &ClientHost {
        self.sim.node::<ClientHost>(id)
    }

    /// Borrows a host server.
    pub fn host_server(&self, id: NodeId) -> &HostServer {
        self.sim.node::<HostServer>(id)
    }

    /// Borrows a redirector.
    pub fn redirector(&self, id: NodeId) -> &ManagedRedirector {
        self.sim.node::<ManagedRedirector>(id)
    }

    /// Opens a client connection to `remote`, running `app`.
    ///
    /// # Panics
    ///
    /// Panics if the client's ephemeral-port space to `remote` is
    /// exhausted; use [`try_connect_client`](Self::try_connect_client) to
    /// handle that recoverably.
    pub fn connect_client(
        &mut self,
        client: NodeId,
        remote: SockAddr,
        app: Box<dyn SocketApp>,
    ) -> Quad {
        self.try_connect_client(client, remote, app)
            .expect("client ephemeral ports exhausted")
    }

    /// Opens a client connection to `remote`, running `app`, failing
    /// cleanly when the client's ephemeral-port space to `remote` is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`EphemeralPortsExhausted`] without creating any state.
    pub fn try_connect_client(
        &mut self,
        client: NodeId,
        remote: SockAddr,
        app: Box<dyn SocketApp>,
    ) -> Result<Quad, EphemeralPortsExhausted> {
        self.sim
            .with_node_ctx::<ClientHost, _>(client, |host, ctx| host.connect(ctx, remote, app))
    }

    /// Runs until the redirector's chain for `service` has exactly
    /// `expected` members, or `deadline` passes. Returns whether the chain
    /// reached the expected size.
    pub fn wait_for_chain(
        &mut self,
        redirector: NodeId,
        service: SockAddr,
        expected: usize,
        deadline: SimTime,
    ) -> bool {
        loop {
            let len = self
                .redirector(redirector)
                .controller()
                .chain(service)
                .map_or(0, <[IpAddr]>::len);
            if len == expected {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let next = self.sim.now().saturating_add(SimDuration::from_millis(5));
            self.sim.run_until(next.min(deadline));
        }
    }
}
