//! The managed redirector node: redirection engine plus the replica
//! management controller.

use hydranet_mgmt::failover::{ControllerAction, PairConfig, ProbeParams, ReplicaController};
use hydranet_mgmt::proto::MGMT_PORT;
use hydranet_netsim::node::{Context, IfaceId, Node, TimerToken};
use hydranet_netsim::packet::{IpAddr, IpPacket, Protocol};
use hydranet_netsim::routing::encode_route_announce;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_obs::{kinds, Obs};
use hydranet_redirect::redirector::{Disposition, RedirectorEngine};
use hydranet_redirect::table::ServiceEntry;
use hydranet_tcp::udp::UdpDatagram;

/// How long a freshly promoted pair member defers brand-new fault-tolerant
/// flows: one mgmt reliable retransmit period
/// (`hydranet_mgmt::reliable::DEFAULT_RETRY_INTERVAL`, 250 ms) plus
/// propagation slack, so every registration still in the retransmit
/// pipeline re-lands and completes the chain before a connection opens.
const PROMOTION_ADMISSION_GRACE: SimDuration = SimDuration::from_millis(300);

/// A redirector with the full replica management plane: intercepts and
/// multicasts service traffic (engine), and runs the §4.4 controller for
/// registration, probing, and reconfiguration.
pub struct ManagedRedirector {
    engine: RedirectorEngine,
    controller: ReplicaController,
    name: String,
    out_scratch: Vec<(IfaceId, IpPacket)>,
    obs: Obs,
    /// See `ClientHost::set_coalesce_timers` in `crate::host`.
    coalesce_timers: bool,
    armed_at: Option<SimTime>,
    /// Interfaces a promotion floods `ROUTE_ANNOUNCE` packets out of.
    announce_ifaces: Vec<IfaceId>,
}

impl std::fmt::Debug for ManagedRedirector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedRedirector")
            .field("name", &self.name)
            .field("engine", &self.engine)
            .finish()
    }
}

impl ManagedRedirector {
    /// Creates a managed redirector at `addr`.
    pub fn new(name: impl Into<String>, addr: IpAddr, probe_params: ProbeParams) -> Self {
        ManagedRedirector {
            engine: RedirectorEngine::new(addr),
            controller: ReplicaController::new(addr, probe_params),
            name: name.into(),
            out_scratch: Vec::new(),
            obs: Obs::disabled(),
            coalesce_timers: false,
            armed_at: None,
            announce_ifaces: Vec::new(),
        }
    }

    /// Joins this redirector to an active/standby pair serving `vip`:
    /// the engine claims packets addressed to the VIP as local, the
    /// controller runs the peer-probe/replication protocol against
    /// `cfg.peer`, and a self-promotion floods `ROUTE_ANNOUNCE` out of
    /// `announce_ifaces` so adjacent routers re-aim the anycast group.
    pub fn configure_pair(&mut self, vip: IpAddr, cfg: PairConfig, announce_ifaces: Vec<IfaceId>) {
        self.engine.set_virtual_addr(vip);
        self.controller.configure_pair(cfg, SimTime::ZERO);
        self.announce_ifaces = announce_ifaces;
    }

    /// Enables node-timer coalescing; see `ClientHost::set_coalesce_timers`
    /// for semantics and the default-off rationale.
    pub fn set_coalesce_timers(&mut self, on: bool) {
        self.coalesce_timers = on;
    }

    /// Wires telemetry into the engine (redirection counters, table
    /// metrics) and the controller (probe/reconfiguration timeline), plus
    /// table install/remove timeline events emitted by this node.
    pub fn set_obs(&mut self, obs: Obs) {
        self.engine.set_obs(&obs);
        self.controller.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The redirection engine (routing and redirector tables).
    pub fn engine(&self) -> &RedirectorEngine {
        &self.engine
    }

    /// The redirection engine, mutable (route configuration at build time).
    pub fn engine_mut(&mut self) -> &mut RedirectorEngine {
        &mut self.engine
    }

    /// The replica management controller.
    pub fn controller(&self) -> &ReplicaController {
        &self.controller
    }

    fn apply_controller_actions(&mut self, now: SimTime, out: &mut Vec<(IfaceId, IpPacket)>) {
        for action in self.controller.take_actions() {
            match action {
                ControllerAction::Send(dst, payload) => {
                    let datagram = UdpDatagram {
                        src_port: MGMT_PORT,
                        dst_port: MGMT_PORT,
                        payload,
                    };
                    // Host daemons are configured with the pair's VIP and
                    // match replies by source address, so anything bound
                    // for a host must be sourced from the VIP. Peer
                    // replication runs on concrete addresses (the peer's
                    // reliable endpoint matches acks by our real address).
                    let src = if self.controller.peer() == Some(dst) {
                        self.engine.addr()
                    } else {
                        self.engine.virtual_addr().unwrap_or(self.engine.addr())
                    };
                    let packet = IpPacket::new(src, dst, Protocol::UDP, datagram.encode());
                    self.engine.route_own(packet, out);
                }
                ControllerAction::UpdateTable { service, chain } => {
                    let epoch = self.controller.epoch();
                    if chain.is_empty() {
                        let applied = self
                            .engine
                            .table_mut()
                            .apply_epoch_update(epoch.term, epoch.seq, service, None);
                        if applied {
                            self.obs.event(
                                now.as_nanos(),
                                kinds::TABLE_REMOVED,
                                &[
                                    ("redirector", self.engine.addr().to_string()),
                                    ("service", service.to_string()),
                                ],
                            );
                        }
                    } else {
                        let chain_desc = chain
                            .iter()
                            .map(|h| h.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ");
                        let applied = self.engine.table_mut().apply_epoch_update(
                            epoch.term,
                            epoch.seq,
                            service,
                            Some(ServiceEntry::FaultTolerant { chain }),
                        );
                        if applied {
                            self.obs.event(
                                now.as_nanos(),
                                kinds::TABLE_INSTALLED,
                                &[
                                    ("redirector", self.engine.addr().to_string()),
                                    ("service", service.to_string()),
                                    ("chain", chain_desc),
                                ],
                            );
                        }
                    }
                }
                ControllerAction::AnnounceRoutes { seq } => {
                    // The announce flips the anycast route here, but host
                    // registrations blackholed while the route still pointed
                    // at the dead ex-active are still retransmitting on the
                    // mgmt reliable cadence (DEFAULT_RETRY_INTERVAL, 250 ms).
                    // Defer brand-new flows one full retransmit period plus
                    // slack so those registrations complete the chain before
                    // a client's SYN retransmit can open a connection
                    // against a silently degraded one.
                    self.engine
                        .defer_new_flows_until(now.saturating_add(PROMOTION_ADMISSION_GRACE));
                    let payload = encode_route_announce(self.engine.addr(), seq);
                    let dst = self.engine.virtual_addr().unwrap_or(self.engine.addr());
                    for &iface in &self.announce_ifaces {
                        let packet = IpPacket::new(
                            self.engine.addr(),
                            dst,
                            Protocol::ROUTE_ANNOUNCE,
                            payload.clone(),
                        );
                        out.push((iface, packet));
                    }
                }
            }
        }
    }

    fn drive(&mut self, ctx: &mut Context<'_>) {
        self.controller.poll(ctx.now());
        let mut out = std::mem::take(&mut self.out_scratch);
        self.apply_controller_actions(ctx.now(), &mut out);
        for (iface, p) in out.drain(..) {
            ctx.send(iface, p);
        }
        self.out_scratch = out;
        if let Some(t) = self.controller.next_deadline() {
            if !self.coalesce_timers || self.armed_at.is_none_or(|a| t < a) {
                ctx.set_timer_at(t, TimerToken(0));
                self.armed_at = Some(t);
            }
        }
    }
}

impl Node for ManagedRedirector {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // A standby pair member must wake on its own to probe the active
        // side; solo redirectors keep their historical packet-driven
        // behavior (no timer armed until something arrives).
        if self.controller.peer().is_some() {
            self.drive(ctx);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_>) {
        // A recovered pair member re-arms its probe/retransmit timers so a
        // healed ex-active originates traffic, meets the newer epoch, and
        // demotes itself instead of wedging silently.
        if self.controller.peer().is_some() {
            self.drive(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _iface: IfaceId, packet: IpPacket) {
        let mut out = std::mem::take(&mut self.out_scratch);
        match self.engine.process(packet, ctx.now(), &mut out) {
            Disposition::Handled => {}
            Disposition::Local(packet) => {
                // Management traffic addressed to the redirector itself.
                if packet.protocol() == Protocol::UDP {
                    if let Ok(dgram) = UdpDatagram::decode(&packet.payload) {
                        if dgram.dst_port == MGMT_PORT {
                            self.controller
                                .on_datagram(packet.src(), &dgram.payload, ctx.now());
                        }
                    }
                }
            }
        }
        for (iface, p) in out.drain(..) {
            ctx.send(iface, p);
        }
        self.out_scratch = out;
        self.drive(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        if self.armed_at.is_some_and(|a| a <= ctx.now()) {
            self.armed_at = None;
        }
        self.drive(ctx);
    }

    fn on_crash(&mut self) {
        // The simulator discards a crashed node's pending timers.
        self.armed_at = None;
    }

    fn name(&self) -> &str {
        &self.name
    }
}
