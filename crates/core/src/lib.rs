//! # hydranet-core
//!
//! The assembled HydraNet-FT system — the paper's primary contribution as a
//! usable library. It wires the substrates together:
//!
//! - [`host`] — [`ClientHost`] (an unmodified client) and [`HostServer`]
//!   (virtual hosts + replicated ports + management daemon);
//! - [`redirector`] — [`ManagedRedirector`] (redirection engine + replica
//!   management controller);
//! - [`system`] — [`SystemBuilder`]: topology construction, automatic
//!   routing, and fault-tolerant service deployment;
//! - [`apps`] — deterministic service/client applications;
//! - [`scenario`] — `ttcp`-style measurements and fail-over drivers.
//!
//! # Examples
//!
//! Deploy an echo service replicated on two host servers and talk to it
//! through a redirector — the client uses one ordinary TCP connection and
//! never learns the service is replicated:
//!
//! ```
//! use hydranet_core::prelude::*;
//!
//! let mut b = SystemBuilder::new(TcpConfig::default());
//! let client = b.add_client("client", IpAddr::new(10, 0, 1, 1));
//! let rd_addr = IpAddr::new(10, 9, 0, 1);
//! let rd = b.add_redirector("rd", rd_addr);
//! let hs1 = b.add_host_server("hs1", IpAddr::new(10, 0, 2, 1), rd_addr);
//! let hs2 = b.add_host_server("hs2", IpAddr::new(10, 0, 3, 1), rd_addr);
//! b.link(client, rd, LinkParams::default());
//! b.link(rd, hs1, LinkParams::default());
//! b.link(rd, hs2, LinkParams::default());
//!
//! let service = SockAddr::new(IpAddr::new(192, 20, 225, 20), 80);
//! let spec = FtServiceSpec::new(service, vec![hs1, hs2], DetectorParams::DEFAULT);
//! let echo_seen = shared(SinkState::default());
//! let handle = echo_seen.clone();
//! b.deploy_ft_service(&spec, move |_quad| Box::new(EchoApp::new(handle.clone())));
//!
//! let mut system = b.build(42);
//! assert!(system.wait_for_chain(rd, service, 2, SimTime::from_secs(2)));
//!
//! let replies = shared(SenderState::default());
//! let app = StreamSenderApp::new(b"hello, replicated world".to_vec(), false, replies.clone());
//! system.connect_client(client, service, Box::new(app));
//! system.sim.run_until(SimTime::from_secs(5));
//! assert_eq!(replies.borrow().replies.data, b"hello, replicated world");
//! ```
//!
//! [`ClientHost`]: host::ClientHost
//! [`HostServer`]: host::HostServer
//! [`ManagedRedirector`]: redirector::ManagedRedirector
//! [`SystemBuilder`]: system::SystemBuilder

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod faults;
pub mod host;
pub mod redirector;
pub mod scenario;
pub mod system;

/// Convenient glob-import of everything a deployment needs.
pub mod prelude {
    pub use crate::apps::{
        shared, EchoApp, LineReplyApp, RequestLoopApp, RequestLoopState, SenderState, Shared,
        SinkRegistry, SinkState, StreamSenderApp,
    };
    pub use crate::faults::{FaultAction, FaultEvent, FaultPlan};
    pub use crate::host::{ClientHost, HostServer};
    pub use crate::redirector::ManagedRedirector;
    pub use crate::scenario::{measure_failover, run_ttcp, FailoverResult, TtcpConfig, TtcpResult};
    pub use crate::system::{FtServiceSpec, NodeKind, System, SystemBuilder};
    pub use hydranet_mgmt::failover::ProbeParams;
    pub use hydranet_netsim::link::{Impairments, LinkParams, LossModel};
    pub use hydranet_netsim::node::{NodeId, NodeParams};
    pub use hydranet_netsim::packet::IpAddr;
    pub use hydranet_netsim::time::{SimDuration, SimTime};
    pub use hydranet_tcp::conn::{KeepaliveConfig, TcpConfig};
    pub use hydranet_tcp::detector::DetectorParams;
    pub use hydranet_tcp::segment::{Quad, SockAddr};
    pub use hydranet_tcp::stack::{EphemeralPortsExhausted, SocketApp, SocketIo};
}
