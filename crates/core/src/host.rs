//! Host nodes: plain clients and HydraNet-FT host servers.

use hydranet_mgmt::daemon::{DaemonAction, HostDaemon};
use hydranet_mgmt::proto::MGMT_PORT;
use hydranet_netsim::node::{Context, IfaceId, Node, TimerToken};
use hydranet_netsim::packet::{IpAddr, IpPacket};
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_obs::Obs;
use hydranet_tcp::conn::TcpConfig;
use hydranet_tcp::detector::DetectorParams;
use hydranet_tcp::segment::{Quad, SockAddr};
use hydranet_tcp::stack::{EphemeralPortsExhausted, SocketApp, StackEvent, TcpStack};

/// An ordinary, unmodified client host: one interface, one [`TcpStack`],
/// no HydraNet software at all — "neither the client application, nor the
/// client TCP stack are aware of service management, server failures, and
/// server recoveries" (§1).
pub struct ClientHost {
    stack: TcpStack,
    /// Stack events accumulated for scenario inspection.
    pub events: Vec<StackEvent>,
    name: String,
    /// Scratch buffer recycled through `TcpStack::take_packets_into` so a
    /// flush costs no allocation once the high-water mark is reached.
    pkt_buf: Vec<IpPacket>,
    /// When set, skip re-arming the node timer if a pending one already
    /// fires at or before the stack's next deadline (see
    /// [`set_coalesce_timers`](Self::set_coalesce_timers)).
    coalesce_timers: bool,
    /// Earliest pending node-timer instant (tracked only for coalescing).
    armed_at: Option<SimTime>,
}

impl std::fmt::Debug for ClientHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHost")
            .field("name", &self.name)
            .field("stack", &self.stack)
            .finish()
    }
}

impl ClientHost {
    /// Creates a client host at `addr`.
    pub fn new(name: impl Into<String>, addr: IpAddr, cfg: TcpConfig) -> Self {
        ClientHost {
            stack: TcpStack::new(addr, cfg),
            events: Vec::new(),
            name: name.into(),
            pkt_buf: Vec::new(),
            coalesce_timers: false,
            armed_at: None,
        }
    }

    /// Enables node-timer coalescing: a flush arms a fresh simulator timer
    /// only when the stack's next deadline is *earlier* than one already
    /// pending. Without this, every flush files a new calendar entry and
    /// every stale entry's wakeup files another — one immortal wakeup
    /// chain per packet, which at 10k-flow scale multiplies simulator
    /// events ~30×. Off by default: dropping those no-op wakeups changes
    /// simulator event *counts*, which the repo's pinned fingerprints
    /// include, so flipping the default is a deliberate re-pin event.
    pub fn set_coalesce_timers(&mut self, on: bool) {
        self.coalesce_timers = on;
    }

    /// The host's stack.
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    /// The host's stack, mutable. Call [`flush`](Self::flush) afterwards if
    /// used inside a node context.
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }

    /// Wires telemetry into the stack (per-connection histograms and
    /// counters).
    pub fn set_obs(&mut self, obs: Obs) {
        self.stack.set_obs(obs);
    }

    /// Opens a connection to `remote` running `app`.
    ///
    /// # Errors
    ///
    /// Fails cleanly when the stack's ephemeral-port space to `remote` is
    /// exhausted (no state created, nothing sent).
    pub fn connect(
        &mut self,
        ctx: &mut Context<'_>,
        remote: SockAddr,
        app: Box<dyn SocketApp>,
    ) -> Result<Quad, EphemeralPortsExhausted> {
        let quad = self.stack.connect(remote, app, ctx.now())?;
        self.flush(ctx);
        Ok(quad)
    }

    /// Sends queued packets, collects events, and (re)arms the stack timer.
    pub fn flush(&mut self, ctx: &mut Context<'_>) {
        self.stack.take_packets_into(&mut self.pkt_buf);
        for p in self.pkt_buf.drain(..) {
            ctx.send(IfaceId::from_index(0), p);
        }
        self.events.extend(self.stack.take_events());
        if let Some(t) = self.stack.next_deadline() {
            if !self.coalesce_timers || self.armed_at.is_none_or(|a| t < a) {
                ctx.set_timer_at(t, TimerToken(0));
                self.armed_at = Some(t);
            }
        }
    }
}

impl Node for ClientHost {
    fn on_packet(&mut self, ctx: &mut Context<'_>, _iface: IfaceId, packet: IpPacket) {
        self.stack.handle_packet(packet, ctx.now());
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        if self.armed_at.is_some_and(|a| a <= ctx.now()) {
            self.armed_at = None;
        }
        self.stack.on_timer(ctx.now());
        self.flush(ctx);
    }

    fn on_crash(&mut self) {
        // The simulator discards a crashed node's pending timers.
        self.armed_at = None;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A replica of a service scheduled for registration.
struct PendingService {
    service: SockAddr,
    detector: DetectorParams,
    register_at: SimTime,
    registered: bool,
}

/// A HydraNet-FT host server: a [`TcpStack`] with virtual hosts and
/// replicated ports, plus the management daemon (§4.1, §4.4).
pub struct HostServer {
    stack: TcpStack,
    daemon: HostDaemon,
    pending: Vec<PendingService>,
    /// Stack events accumulated for scenario inspection.
    pub events: Vec<StackEvent>,
    name: String,
    /// Kept so a daemon recreated on recovery can be re-wired.
    obs: Obs,
    /// Scratch buffers recycled through the stack's `take_*_into` drains.
    pkt_buf: Vec<IpPacket>,
    ev_buf: Vec<StackEvent>,
    /// See [`ClientHost::set_coalesce_timers`].
    coalesce_timers: bool,
    armed_at: Option<SimTime>,
}

impl std::fmt::Debug for HostServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostServer")
            .field("name", &self.name)
            .field("stack", &self.stack)
            .finish()
    }
}

impl HostServer {
    /// Creates a host server at `addr`, managed via the redirector at
    /// `redirector`.
    pub fn new(name: impl Into<String>, addr: IpAddr, redirector: IpAddr, cfg: TcpConfig) -> Self {
        Self::with_redirectors(name, addr, vec![redirector], cfg)
    }

    /// Creates a host server managed via *several* redirectors (the
    /// Figure 1 multi-ISP deployment): registrations and failure reports
    /// are broadcast to all of them.
    ///
    /// # Panics
    ///
    /// Panics if `redirectors` is empty.
    pub fn with_redirectors(
        name: impl Into<String>,
        addr: IpAddr,
        redirectors: Vec<IpAddr>,
        cfg: TcpConfig,
    ) -> Self {
        HostServer {
            stack: TcpStack::new(addr, cfg),
            daemon: HostDaemon::multi_with_id_base(addr, redirectors, 1),
            pending: Vec::new(),
            events: Vec::new(),
            name: name.into(),
            obs: Obs::disabled(),
            pkt_buf: Vec::new(),
            ev_buf: Vec::new(),
            coalesce_timers: false,
            armed_at: None,
        }
    }

    /// Enables node-timer coalescing; see [`ClientHost::set_coalesce_timers`]
    /// for semantics and the default-off rationale.
    pub fn set_coalesce_timers(&mut self, on: bool) {
        self.coalesce_timers = on;
    }

    /// Wires telemetry into the stack and the management daemon.
    pub fn set_obs(&mut self, obs: Obs) {
        self.stack.set_obs(obs.clone());
        self.daemon.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The host's stack.
    pub fn stack(&self) -> &TcpStack {
        &self.stack
    }

    /// The host's stack, mutable (for listener installation at build time).
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }

    /// The management daemon.
    pub fn daemon(&self) -> &HostDaemon {
        &self.daemon
    }

    /// Schedules the replica of `service` on this host for registration at
    /// `register_at`. Registration order across hosts defines the daisy
    /// chain (first registrant becomes the primary), so deployments stagger
    /// these instants. A listener for the port must be installed
    /// separately via [`stack_mut`](Self::stack_mut).
    pub fn schedule_registration(
        &mut self,
        service: SockAddr,
        detector: DetectorParams,
        register_at: SimTime,
    ) {
        self.pending.push(PendingService {
            service,
            detector,
            register_at,
            registered: false,
        });
    }

    /// Registers (or re-registers) a replica of `service` immediately —
    /// the operator-driven re-commissioning path ("bring them back in when
    /// the congestion clears", §1). A listener for the port must already
    /// be installed.
    pub fn register_now(
        &mut self,
        ctx: &mut Context<'_>,
        service: SockAddr,
        detector: DetectorParams,
    ) {
        self.pending.push(PendingService {
            service,
            detector,
            register_at: ctx.now(),
            registered: false,
        });
        self.drive(ctx);
    }

    /// Voluntarily deregisters this host's replica of `service`.
    pub fn deregister(&mut self, ctx: &mut Context<'_>, service: SockAddr) {
        self.daemon.deregister_service(service, ctx.now());
        self.drive(ctx);
    }

    fn drive(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        // Fire any due registrations.
        for p in &mut self.pending {
            if !p.registered && now >= p.register_at {
                p.registered = true;
                self.daemon.register_service(p.service, p.detector, now);
            }
        }
        self.daemon.poll(now);
        // Apply daemon actions to the stack.
        for action in self.daemon.take_actions() {
            match action {
                DaemonAction::Send(dst, payload) => {
                    let src = SockAddr::new(self.stack.primary_addr(), MGMT_PORT);
                    self.stack
                        .udp_send(src, SockAddr::new(dst, MGMT_PORT), payload);
                }
                DaemonAction::AddVirtualHost(addr) => {
                    self.stack.add_local_addr(addr);
                }
                DaemonAction::ApplyPortOpt { port, config } => {
                    self.stack.setportopt(port, config, now);
                }
            }
        }
        // Route stack events: management datagrams to the daemon, failure
        // suspicions into failure reports.
        let mut events = std::mem::take(&mut self.ev_buf);
        self.stack.take_events_into(&mut events);
        for event in events.drain(..) {
            match &event {
                StackEvent::UdpDelivery {
                    local,
                    remote,
                    payload,
                } if local.port == MGMT_PORT => {
                    self.daemon.on_datagram(remote.addr, payload, now);
                }
                StackEvent::FailureSuspected {
                    port,
                    quad,
                    observed,
                } => {
                    let service = SockAddr::new(quad.local.addr, *port);
                    self.daemon.report_failure(service, *observed, now);
                    self.events.push(event);
                }
                _ => self.events.push(event),
            }
        }
        self.ev_buf = events;
        // Daemon reactions may have produced more actions (e.g. probe
        // answers); run one more application pass.
        for action in self.daemon.take_actions() {
            match action {
                DaemonAction::Send(dst, payload) => {
                    let src = SockAddr::new(self.stack.primary_addr(), MGMT_PORT);
                    self.stack
                        .udp_send(src, SockAddr::new(dst, MGMT_PORT), payload);
                }
                DaemonAction::AddVirtualHost(addr) => self.stack.add_local_addr(addr),
                DaemonAction::ApplyPortOpt { port, config } => {
                    self.stack.setportopt(port, config, now)
                }
            }
        }
        self.flush(ctx);
    }

    fn flush(&mut self, ctx: &mut Context<'_>) {
        self.stack.take_packets_into(&mut self.pkt_buf);
        for p in self.pkt_buf.drain(..) {
            ctx.send(IfaceId::from_index(0), p);
        }
        self.events.extend(self.stack.take_events());
        let deadline = [
            self.stack.next_deadline(),
            self.daemon.next_deadline(),
            self.pending
                .iter()
                .filter(|p| !p.registered)
                .map(|p| p.register_at)
                .min(),
        ]
        .into_iter()
        .flatten()
        .min();
        if let Some(t) = deadline {
            if !self.coalesce_timers || self.armed_at.is_none_or(|a| t < a) {
                ctx.set_timer_at(t, TimerToken(0));
                self.armed_at = Some(t);
            }
        }
    }
}

impl Node for HostServer {
    fn on_crash(&mut self) {
        // Fail-stop: connection state, replicated-port state, and daemon
        // state are volatile and die with the host. Listeners and the
        // registration schedule model on-disk configuration: a restarted
        // server re-applies them.
        self.stack.reset_volatile();
        for p in &mut self.pending {
            p.registered = false;
        }
        // The simulator discards a crashed node's pending timers.
        self.armed_at = None;
    }

    fn on_recover(&mut self, ctx: &mut Context<'_>) {
        // Re-commissioning: a restarted daemon (with a fresh message-id
        // space, so the controller's duplicate filter accepts it) registers
        // its replicas again; the redirector appends the host to the chain
        // as a backup ("creation of backup servers", §4.4). Connections
        // that predate the crash are not resumed — per-connection state
        // transfer is the paper's declared future work (§6).
        let redirectors = self.daemon.redirectors().to_vec();
        self.daemon = HostDaemon::multi_with_id_base(
            self.stack.primary_addr(),
            redirectors,
            ctx.now().as_nanos().max(1),
        );
        self.daemon.set_obs(self.obs.clone());
        for p in &mut self.pending {
            p.register_at = ctx.now();
        }
        self.drive(ctx);
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Ensure the first registration deadline is armed.
        self.drive(ctx);
        // Always arm a short bootstrap tick so registrations scheduled at
        // t=0 with zero-latency links still make progress.
        ctx.set_timer(SimDuration::from_micros(1), TimerToken(0));
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, _iface: IfaceId, packet: IpPacket) {
        self.stack.handle_packet(packet, ctx.now());
        self.drive(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        if self.armed_at.is_some_and(|a| a <= ctx.now()) {
            self.armed_at = None;
        }
        self.stack.on_timer(ctx.now());
        self.drive(ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}
