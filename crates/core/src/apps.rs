//! Reusable applications for services and clients.
//!
//! Applications communicate results to scenario code through shared
//! [`Rc<RefCell<…>>`] handles: the simulation owns the app instances, the
//! scenario keeps the handles.

use std::cell::RefCell;
use std::rc::Rc;

use hydranet_netsim::time::SimTime;
use hydranet_tcp::segment::Quad;
use hydranet_tcp::stack::{SocketApp, SocketIo};

/// Shared mutable handle used by apps to expose state to scenarios.
pub type Shared<T> = Rc<RefCell<T>>;

/// Creates a [`Shared`] value.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

/// Progress record kept by sink-style apps.
#[derive(Debug, Clone, Default)]
pub struct SinkState {
    /// Bytes received, in order.
    pub data: Vec<u8>,
    /// When the first byte arrived.
    pub first_byte_at: Option<SimTime>,
    /// When the most recent byte arrived.
    pub last_byte_at: Option<SimTime>,
    /// Largest gap observed between consecutive data arrivals — the
    /// client-visible "stall" during a fail-over.
    pub max_gap: Option<(SimTime, SimTime)>,
    /// Whether the peer closed.
    pub peer_closed: bool,
    /// Whether the connection was reset.
    pub reset: bool,
}

impl SinkState {
    /// Total bytes received.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The largest inter-arrival gap, if at least two arrivals happened.
    pub fn max_gap_duration(&self) -> Option<hydranet_netsim::time::SimDuration> {
        self.max_gap.map(|(a, b)| b.duration_since(a))
    }

    fn record_arrival(&mut self, now: SimTime, bytes: &[u8]) {
        if self.first_byte_at.is_none() {
            self.first_byte_at = Some(now);
        }
        if let Some(last) = self.last_byte_at {
            let better = match self.max_gap {
                Some((a, b)) => now.duration_since(last) > b.duration_since(a),
                None => true,
            };
            if better {
                self.max_gap = Some((last, now));
            }
        }
        self.last_byte_at = Some(now);
        self.data.extend_from_slice(bytes);
    }
}

/// A server/client app that collects everything it receives and optionally
/// echoes it back (buffering across full send windows, as a deterministic
/// replicated service must).
#[derive(Debug)]
pub struct EchoApp {
    state: Shared<SinkState>,
    echo: bool,
    backlog: Vec<u8>,
}

impl EchoApp {
    /// Creates an echoing app reporting into `state`.
    pub fn new(state: Shared<SinkState>) -> Self {
        EchoApp {
            state,
            echo: true,
            backlog: Vec::new(),
        }
    }

    /// Creates a silent sink reporting into `state`.
    pub fn sink(state: Shared<SinkState>) -> Self {
        EchoApp {
            state,
            echo: false,
            backlog: Vec::new(),
        }
    }

    fn flush_backlog(&mut self, io: &mut SocketIo<'_>) {
        while !self.backlog.is_empty() {
            let n = io.write(&self.backlog);
            if n == 0 {
                break;
            }
            self.backlog.drain(..n);
        }
    }
}

impl SocketApp for EchoApp {
    fn on_data(&mut self, io: &mut SocketIo<'_>) {
        let data = io.read_all();
        if self.echo {
            self.backlog.extend_from_slice(&data);
            self.flush_backlog(io);
        }
        self.state.borrow_mut().record_arrival(io.now(), &data);
    }

    fn on_send_space(&mut self, io: &mut SocketIo<'_>) {
        self.flush_backlog(io);
    }

    fn on_peer_fin(&mut self, io: &mut SocketIo<'_>) {
        self.state.borrow_mut().peer_closed = true;
        // Half-close etiquette: finish our side once the peer is done.
        if self.backlog.is_empty() {
            io.close();
        }
    }

    fn on_reset(&mut self, _quad: Quad) {
        self.state.borrow_mut().reset = true;
    }
}

/// Progress record kept by [`StreamSenderApp`].
#[derive(Debug, Clone, Default)]
pub struct SenderState {
    /// Bytes accepted into the send buffer so far.
    pub written: usize,
    /// Whether every byte has been handed to TCP.
    pub finished_writing: bool,
    /// Replies collected (for request/response or echo flows).
    pub replies: SinkState,
    /// When the connection established.
    pub established_at: Option<SimTime>,
}

/// A client app that streams a fixed payload to the service as fast as the
/// socket accepts it, collecting any response bytes.
#[derive(Debug)]
pub struct StreamSenderApp {
    payload: Vec<u8>,
    cursor: usize,
    close_when_done: bool,
    state: Shared<SenderState>,
}

impl StreamSenderApp {
    /// Creates a sender streaming `payload`; if `close_when_done`, the app
    /// half-closes after the last byte is accepted.
    pub fn new(payload: Vec<u8>, close_when_done: bool, state: Shared<SenderState>) -> Self {
        StreamSenderApp {
            payload,
            cursor: 0,
            close_when_done,
            state,
        }
    }

    fn pump(&mut self, io: &mut SocketIo<'_>) {
        while self.cursor < self.payload.len() {
            let n = io.write(&self.payload[self.cursor..]);
            if n == 0 {
                break;
            }
            self.cursor += n;
        }
        let mut st = self.state.borrow_mut();
        st.written = self.cursor;
        if self.cursor == self.payload.len() && !st.finished_writing {
            st.finished_writing = true;
            drop(st);
            if self.close_when_done {
                io.close();
            }
        }
    }
}

impl SocketApp for StreamSenderApp {
    fn on_established(&mut self, io: &mut SocketIo<'_>) {
        self.state.borrow_mut().established_at = Some(io.now());
        self.pump(io);
    }

    fn on_send_space(&mut self, io: &mut SocketIo<'_>) {
        self.pump(io);
    }

    fn on_data(&mut self, io: &mut SocketIo<'_>) {
        let data = io.read_all();
        let now = io.now();
        self.state.borrow_mut().replies.record_arrival(now, &data);
    }

    fn on_reset(&mut self, _quad: Quad) {
        self.state.borrow_mut().replies.reset = true;
    }
}

/// A simple request/response service: for every newline-terminated request
/// line, responds with `body_bytes` bytes of deterministic content. Stands
/// in for the stateful web/e-commerce services the paper motivates.
#[derive(Debug)]
pub struct LineReplyApp {
    body_bytes: usize,
    pending_line: Vec<u8>,
    backlog: Vec<u8>,
    served: Shared<u64>,
}

impl LineReplyApp {
    /// Creates a service answering each request line with `body_bytes`
    /// bytes, counting served requests into `served`.
    pub fn new(body_bytes: usize, served: Shared<u64>) -> Self {
        LineReplyApp {
            body_bytes,
            pending_line: Vec::new(),
            backlog: Vec::new(),
            served,
        }
    }

    fn flush_backlog(&mut self, io: &mut SocketIo<'_>) {
        while !self.backlog.is_empty() {
            let n = io.write(&self.backlog);
            if n == 0 {
                break;
            }
            self.backlog.drain(..n);
        }
    }
}

impl SocketApp for LineReplyApp {
    fn on_data(&mut self, io: &mut SocketIo<'_>) {
        for byte in io.read_all() {
            if byte == b'\n' {
                // Body bytes avoid the terminator byte by construction.
                let reply: Vec<u8> = (0..self.body_bytes)
                    .map(|i| b'a' + (i % 26) as u8)
                    .collect();
                self.backlog.extend_from_slice(&reply);
                self.backlog.push(b'\n');
                *self.served.borrow_mut() += 1;
                self.pending_line.clear();
            } else if self.pending_line.len() < MAX_REQUEST_LINE {
                self.pending_line.push(byte);
            }
            // Bytes past the cap are dropped: a peer that never terminates
            // its request line must not grow server memory without bound.
        }
        self.flush_backlog(io);
    }

    fn on_send_space(&mut self, io: &mut SocketIo<'_>) {
        self.flush_backlog(io);
    }
}

/// Longest request line [`LineReplyApp`] buffers before discarding input.
pub const MAX_REQUEST_LINE: usize = 8192;

/// A client that issues `count` request lines, waiting for each full
/// response (terminated by `\n`) before sending the next.
#[derive(Debug)]
pub struct RequestLoopApp {
    remaining: u32,
    state: Shared<RequestLoopState>,
}

/// Progress of a [`RequestLoopApp`].
#[derive(Debug, Clone, Default)]
pub struct RequestLoopState {
    /// Completed request/response exchanges.
    pub completed: u32,
    /// Completion times of each exchange.
    pub completion_times: Vec<SimTime>,
    /// Response bytes of the exchange in progress.
    pub in_progress: Vec<u8>,
    /// Whether the connection was reset.
    pub reset: bool,
}

impl RequestLoopApp {
    /// Creates a client that performs `count` exchanges.
    pub fn new(count: u32, state: Shared<RequestLoopState>) -> Self {
        RequestLoopApp {
            remaining: count,
            state,
        }
    }

    fn send_request(&mut self, io: &mut SocketIo<'_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            io.write(b"GET /object\n");
        } else {
            io.close();
        }
    }
}

impl SocketApp for RequestLoopApp {
    fn on_established(&mut self, io: &mut SocketIo<'_>) {
        self.send_request(io);
    }

    fn on_data(&mut self, io: &mut SocketIo<'_>) {
        let data = io.read_all();
        let mut finished = false;
        {
            let mut st = self.state.borrow_mut();
            for byte in data {
                if byte == b'\n' {
                    st.completed += 1;
                    st.completion_times.push(io.now());
                    st.in_progress.clear();
                    finished = true;
                } else {
                    st.in_progress.push(byte);
                }
            }
        }
        if finished {
            self.send_request(io);
        }
    }

    fn on_reset(&mut self, _quad: Quad) {
        self.state.borrow_mut().reset = true;
    }
}

/// Per-connection sink bookkeeping: hands every accepted connection its own
/// [`SinkState`], retrievable by the client endpoint afterwards. Use this
/// instead of sharing one `SinkState` across a listener's connections —
/// interleaved recording makes byte-level assertions meaningless.
#[derive(Debug, Default)]
pub struct SinkRegistry {
    by_quad: RefCell<Vec<(Quad, Shared<SinkState>)>>,
}

impl SinkRegistry {
    /// Creates an empty registry (wrap in [`shared`] to move into a
    /// factory closure).
    pub fn new() -> Shared<SinkRegistry> {
        shared(SinkRegistry::default())
    }

    /// Creates the app for one accepted connection, registering its sink.
    pub fn make_app(registry: &Shared<SinkRegistry>, quad: Quad, echo: bool) -> EchoApp {
        let state = shared(SinkState::default());
        registry
            .borrow()
            .by_quad
            .borrow_mut()
            .push((quad, state.clone()));
        if echo {
            EchoApp::new(state)
        } else {
            EchoApp::sink(state)
        }
    }

    /// The sink of the connection whose *remote* endpoint is `remote`
    /// (most recent if the client reconnected).
    pub fn sink_for_remote(
        &self,
        remote: hydranet_tcp::segment::SockAddr,
    ) -> Option<Shared<SinkState>> {
        self.by_quad
            .borrow()
            .iter()
            .rev()
            .find(|(q, _)| q.remote == remote)
            .map(|(_, s)| s.clone())
    }

    /// All `(quad, sink)` pairs registered so far.
    pub fn all(&self) -> Vec<(Quad, Shared<SinkState>)> {
        self.by_quad.borrow().clone()
    }

    /// Number of connections accepted through this registry.
    pub fn len(&self) -> usize {
        self.by_quad.borrow().len()
    }

    /// Whether no connection has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.by_quad.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydranet_netsim::time::SimDuration;

    #[test]
    fn sink_state_tracks_gaps() {
        let mut s = SinkState::default();
        s.record_arrival(SimTime::from_millis(10), b"a");
        s.record_arrival(SimTime::from_millis(20), b"b");
        s.record_arrival(SimTime::from_millis(500), b"c");
        s.record_arrival(SimTime::from_millis(510), b"d");
        assert_eq!(s.len(), 4);
        assert_eq!(s.first_byte_at, Some(SimTime::from_millis(10)));
        assert_eq!(s.last_byte_at, Some(SimTime::from_millis(510)));
        assert_eq!(s.max_gap_duration(), Some(SimDuration::from_millis(480)));
    }

    #[test]
    fn sink_state_empty() {
        let s = SinkState::default();
        assert!(s.is_empty());
        assert!(s.max_gap_duration().is_none());
    }

    #[test]
    fn shared_handles_are_shared() {
        let h = shared(5u32);
        let h2 = h.clone();
        *h.borrow_mut() = 7;
        assert_eq!(*h2.borrow(), 7);
    }
}
