//! Scenario drivers and measurement utilities: the `ttcp`-style workload
//! the paper's evaluation uses, and fail-over measurements.

use hydranet_netsim::node::NodeId;
use hydranet_netsim::time::{SimDuration, SimTime};
use hydranet_tcp::segment::{Quad, SockAddr};

use crate::apps::{shared, Shared, SinkState, StreamSenderApp};
use crate::host::ClientHost;
use crate::system::System;

/// Configuration of one `ttcp`-style bulk transfer measurement.
///
/// The paper's §5 methodology: `ttcp` writes `total_bytes` in buffers of
/// `write_size`, with sender-side batching of small segments turned off so
/// every write becomes one packet. The reproduction achieves the
/// one-write-one-packet property by running the measurement connection with
/// `MSS = write_size` (see `TcpConfig::mss`), which the caller arranges on
/// the client host.
#[derive(Debug, Clone)]
pub struct TtcpConfig {
    /// Total bytes to transfer.
    pub total_bytes: usize,
    /// Bytes per write — the paper's "packet size" axis.
    pub write_size: usize,
    /// Give up after this much simulated time.
    pub deadline: SimTime,
}

/// Result of a `ttcp` run.
#[derive(Debug, Clone)]
pub struct TtcpResult {
    /// Bytes that reached the service application (receiver side).
    pub bytes_received: usize,
    /// Time from the first byte's arrival to the last byte's arrival at
    /// the receiver.
    pub duration: SimDuration,
    /// Receiver-side sustained throughput in kB/s (the paper's unit).
    pub throughput_kbps: f64,
    /// Whether the full transfer completed before the deadline.
    pub completed: bool,
    /// Client-side retransmissions performed.
    pub client_retransmits: u64,
    /// Client-side segments sent.
    pub client_segments: u64,
}

/// Runs a `ttcp` transfer from `client` to `service`, measuring at the
/// given receiver-side sink (the service application's [`SinkState`]).
///
/// The caller deploys the service (whose app must record into `sink`) and
/// ensures the client's `TcpConfig::mss` equals `cfg.write_size`.
pub fn run_ttcp(
    system: &mut System,
    client: NodeId,
    service: SockAddr,
    sink: &Shared<SinkState>,
    cfg: &TtcpConfig,
) -> TtcpResult {
    let payload: Vec<u8> = (0..cfg.total_bytes).map(|i| (i % 251) as u8).collect();
    let sender_state = shared(Default::default());
    let app = StreamSenderApp::new(payload, false, sender_state);
    let quad = system.connect_client(client, service, Box::new(app));

    // Poll in small steps so completion time is read with ~1 ms accuracy.
    let step = SimDuration::from_millis(1);
    while system.sim.now() < cfg.deadline {
        if sink.borrow().len() >= cfg.total_bytes {
            break;
        }
        let next = system.sim.now().saturating_add(step);
        system.sim.run_until(next.min(cfg.deadline));
    }
    finish_ttcp(system, client, quad, sink, cfg)
}

fn finish_ttcp(
    system: &System,
    client: NodeId,
    quad: Quad,
    sink: &Shared<SinkState>,
    cfg: &TtcpConfig,
) -> TtcpResult {
    let sink = sink.borrow();
    let bytes = sink.len().min(cfg.total_bytes);
    let duration = match (sink.first_byte_at, sink.last_byte_at) {
        (Some(a), Some(b)) if b > a => b.duration_since(a),
        _ => SimDuration::ZERO,
    };
    let throughput_kbps = if duration.is_zero() {
        0.0
    } else {
        (bytes as f64 / 1000.0) / duration.as_secs_f64()
    };
    let client_host = system.sim.node::<ClientHost>(client);
    let (client_retransmits, client_segments) = client_host
        .stack()
        .conn(quad)
        .map(|c| (c.retransmit_count(), c.segments_sent()))
        .unwrap_or((0, 0));
    TtcpResult {
        bytes_received: bytes,
        duration,
        throughput_kbps,
        completed: bytes >= cfg.total_bytes,
        client_retransmits,
        client_segments,
    }
}

/// Result of a fail-over scenario.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Whether the transfer completed despite the failure.
    pub completed: bool,
    /// The largest client-visible gap between reply bytes — the service
    /// disruption the fail-over cost.
    pub client_stall: Option<SimDuration>,
    /// When the redirector completed the chain reconfiguration (if it did).
    pub reconfigured: bool,
    /// Bytes the client received in total.
    pub bytes_received: usize,
    /// Measured detection latency — first `tcp.detector.suspected` to the
    /// first promotion — from the telemetry timeline, if both happened.
    pub detection_latency: Option<SimDuration>,
}

/// Measures client-visible disruption across a replica failure: runs until
/// `sink` has `expected_bytes` or `deadline`, then reports the largest
/// inter-arrival gap recorded by the sink.
pub fn measure_failover(
    system: &mut System,
    redirector: NodeId,
    sink: &Shared<SinkState>,
    expected_bytes: usize,
    deadline: SimTime,
) -> FailoverResult {
    let step = SimDuration::from_millis(5);
    while system.sim.now() < deadline {
        if sink.borrow().len() >= expected_bytes {
            break;
        }
        let next = system.sim.now().saturating_add(step);
        system.sim.run_until(next.min(deadline));
    }
    let reconfigured = system
        .redirector(redirector)
        .controller()
        .reconfigurations()
        > 0;
    let detection_latency = system
        .detection_latency_nanos()
        .map(SimDuration::from_nanos);
    let sink = sink.borrow();
    FailoverResult {
        completed: sink.len() >= expected_bytes,
        client_stall: sink.max_gap_duration(),
        reconfigured,
        bytes_received: sink.len(),
        detection_latency,
    }
}
