//! End-to-end redirector-failover tests: the redirector pair is the last
//! single point of failure the paper's architecture leaves standing, so
//! these drive the whole replication/promotion/anycast-flip path through
//! the assembled system — including the partition-then-heal case where a
//! deposed ex-active tries to push stale table updates.

use hydranet_core::prelude::*;
use hydranet_netsim::link::LinkId;
use hydranet_netsim::routing::RouterNode;

const CLIENT: IpAddr = IpAddr::new(10, 0, 1, 1);
const RD_A: IpAddr = IpAddr::new(10, 9, 0, 1);
const RD_B: IpAddr = IpAddr::new(10, 9, 0, 2);
const VIP: IpAddr = IpAddr::new(10, 9, 0, 9);
const HS: [IpAddr; 3] = [
    IpAddr::new(10, 0, 2, 1),
    IpAddr::new(10, 0, 3, 1),
    IpAddr::new(10, 0, 4, 1),
];

fn service() -> SockAddr {
    SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
}

struct Deployment {
    system: System,
    client: NodeId,
    rd_a: NodeId,
    rd_b: NodeId,
    router_a: NodeId,
    router_b: NodeId,
    sinks: Vec<Shared<SinkState>>,
    /// The client-side link routerA—rdA and the peer link rdA—rdB: cutting
    /// exactly these isolates rdA from its peer and the clients while its
    /// daemon side (routerB) stays reachable.
    rd_a_west_links: [LinkId; 2],
}

/// A 3-replica echo chain behind a redirector *pair*: clients and host
/// daemons address only the VIP, plain routers sit on both sides, and
/// every router is linked to both pair members (the anycast group).
///
/// ```text
/// client — routerA ═ (rdA ↔ rdB) ═ routerB — hs1/hs2/hs3
/// ```
fn deploy(seed: u64) -> Deployment {
    deploy_with(seed, None)
}

/// Like [`deploy`], optionally adding a fourth host server whose single
/// registration fires at `late_registration` — aimed (via the VIP) at
/// whichever member the routers consider active at that moment.
fn deploy_with(seed: u64, late_registration: Option<SimTime>) -> Deployment {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("client", CLIENT);
    let (rd_a, rd_b) = b.add_redirector_pair("rdA", RD_A, "rdB", RD_B, VIP);
    b.route_via_pair(VIP, service().addr);
    let router_a = b.add_router("routerA");
    let router_b = b.add_router("routerB");
    let replicas: Vec<NodeId> = HS
        .iter()
        .enumerate()
        .map(|(i, addr)| b.add_host_server(&format!("hs{}", i + 1), *addr, VIP))
        .collect();
    b.link(client, router_a, LinkParams::default());
    let l_client_side = b.link(router_a, rd_a, LinkParams::default());
    b.link(router_a, rd_b, LinkParams::default());
    let l_peer = b.link(rd_a, rd_b, LinkParams::default());
    b.link(rd_a, router_b, LinkParams::default());
    b.link(rd_b, router_b, LinkParams::default());
    for &r in &replicas {
        b.link(router_b, r, LinkParams::default());
    }
    if let Some(at) = late_registration {
        let hs4 = b.add_host_server("hs4", IpAddr::new(10, 0, 5, 1), VIP);
        b.link(router_b, hs4, LinkParams::default());
        let mut late = FtServiceSpec::new(
            service(),
            vec![hs4],
            DetectorParams::new(4, SimDuration::from_secs(60)),
        );
        late.registration_start = at;
        let spare = shared(SinkState::default());
        b.deploy_ft_service(&late, move |_q| Box::new(EchoApp::new(spare.clone())));
    }
    let sinks: Vec<Shared<SinkState>> = (0..replicas.len())
        .map(|_| shared(SinkState::default()))
        .collect();
    let detector = DetectorParams::new(4, SimDuration::from_secs(60));
    let base = FtServiceSpec::new(service(), replicas.clone(), detector);
    for (i, &replica) in replicas.iter().enumerate() {
        let sink = sinks[i].clone();
        let mut one = FtServiceSpec {
            chain: vec![replica],
            ..base.clone()
        };
        one.registration_start = base
            .registration_start
            .saturating_add(base.registration_stagger * i as u64);
        b.deploy_ft_service(&one, move |_q| Box::new(EchoApp::new(sink.clone())));
    }
    let mut system = b.build(seed);
    assert!(
        system.wait_for_chain(rd_a, service(), replicas.len(), SimTime::from_secs(3)),
        "chain failed to form on the active redirector"
    );
    Deployment {
        system,
        client,
        rd_a,
        rd_b,
        router_a,
        router_b,
        sinks,
        rd_a_west_links: [l_client_side, l_peer],
    }
}

fn chain_at(d: &Deployment, rd: NodeId) -> Vec<IpAddr> {
    d.system
        .redirector(rd)
        .controller()
        .chain(service())
        .map(<[IpAddr]>::to_vec)
        .unwrap_or_default()
}

/// Streams `payload` through the chain, runs `plan`, and polls until the
/// client has the full echo or `deadline`. Returns (reply bytes, intact).
fn run_transfer(
    d: &mut Deployment,
    payload: &[u8],
    plan: FaultPlan,
    deadline: SimTime,
) -> (usize, bool) {
    let state = shared(SenderState::default());
    let app = StreamSenderApp::new(payload.to_vec(), false, state.clone());
    d.system.connect_client(d.client, service(), Box::new(app));
    plan.apply(&mut d.system);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline {
        if state.borrow().replies.data.len() >= payload.len() {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(10));
        d.system.sim.run_until(step);
    }
    let st = state.borrow();
    (st.replies.data.len(), st.replies.data == payload)
}

/// The table the active builds must reach the standby via replication —
/// the standby never hears a registration directly.
#[test]
fn table_replicates_to_the_standby() {
    let d = deploy(42);
    assert_eq!(chain_at(&d, d.rd_a), HS.to_vec(), "active chain wrong");
    assert_eq!(
        chain_at(&d, d.rd_b),
        HS.to_vec(),
        "standby never received the replicated chain"
    );
    assert!(d.system.redirector(d.rd_a).controller().is_active());
    assert!(!d.system.redirector(d.rd_b).controller().is_active());
    // The standby's *engine* table is live too: a flip needs no rebuild.
    assert!(d
        .system
        .redirector(d.rd_b)
        .engine()
        .table()
        .lookup(service())
        .is_some());
}

/// The headline scenario: the active redirector dies while a transfer is
/// in full flight. The standby's peer probes go unanswered, it promotes
/// itself, floods the route announcement, both routers flip their anycast
/// group to the survivor, and the client's single TCP connection — which
/// only ever knew the VIP — completes the echo exactly once.
#[test]
fn crash_active_redirector_under_load() {
    let mut d = deploy(42);
    let payload: Vec<u8> = (0..60_000).map(|i| (i % 251) as u8).collect();
    let crash_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    let plan = FaultPlan::new().crash(d.rd_a, crash_at);

    let (bytes, intact) = run_transfer(&mut d, &payload, plan, SimTime::from_secs(30));
    assert_eq!(bytes, payload.len(), "client reply stream incomplete");
    assert!(intact, "client reply stream corrupted or duplicated");

    // The standby promoted itself, exactly once.
    let rd_b = d.system.redirector(d.rd_b).controller();
    assert!(rd_b.is_active(), "standby never took over");
    assert_eq!(rd_b.promotions(), 1, "standby promoted more than once");
    assert!(rd_b.epoch().term >= 1, "promotion did not bump the term");
    assert!(
        d.system
            .obs()
            .first_event_at("mgmt.controller.redirector_promoted")
            .is_some(),
        "no promotion event on the timeline"
    );

    // Both routers flipped their anycast group to the survivor.
    for (name, router) in [("routerA", d.router_a), ("routerB", d.router_b)] {
        assert!(
            d.system.sim.node::<RouterNode>(router).anycast_flips() > 0,
            "{name} never flipped its anycast group"
        );
    }

    // Exactly-once delivery at every replica: each consumed the complete
    // client stream despite the mid-transfer redirector swap.
    for (i, sink) in d.sinks.iter().enumerate() {
        assert_eq!(
            sink.borrow().data,
            payload,
            "replica {i} stream incomplete or duplicated"
        );
    }
}

/// Partition-then-heal with stale updates: the active keeps its daemon
/// side but loses both its peer and the client side, so the standby
/// promotes while the ex-active — still reachable by daemons via the
/// routers' un-flipped VIP routes — accepts a *new registration* and
/// replicates it under the old term. On heal that queued stale update
/// must be rejected by the new active, and the epoch protocol must
/// demote and resync the ex-active. (The stale registration is
/// discarded with the rest of the doomed term — the paper's redirector
/// offers at-least-once registration, and a lost registrant re-registers
/// on its next failure report, not silently.)
#[test]
fn healed_ex_active_is_demoted_and_resynced() {
    let cut = SimTime::from_millis(150);
    let mut d = deploy_with(42, Some(SimTime::from_millis(400)));
    assert!(
        d.system.sim.now() < cut,
        "chain must converge before the partition begins"
    );
    let heal_after = SimDuration::from_millis(1500);
    let plan = d
        .rd_a_west_links
        .iter()
        .fold(FaultPlan::new(), |p, &l| p.link_flap(l, cut, heal_after));
    plan.apply(&mut d.system);
    d.system
        .sim
        .run_until(cut.saturating_add(SimDuration::from_secs(12)));
    assert_eq!(
        d.system.redirector(d.rd_a).controller().epoch(),
        d.system.redirector(d.rd_b).controller().epoch(),
        "resync must land the ex-active on the new active's exact epoch"
    );

    let a = d.system.redirector(d.rd_a).controller();
    let b = d.system.redirector(d.rd_b).controller();
    assert!(b.is_active(), "standby never promoted during the partition");
    assert!(
        !a.is_active(),
        "healed ex-active still believes it is active"
    );
    assert!(a.epoch().term >= 1, "ex-active never adopted the new term");
    assert!(
        b.stale_rejections() > 0,
        "new active never saw (and rejected) a stale update"
    );
    assert!(
        d.system
            .obs()
            .first_event_at("mgmt.controller.stale_epoch_rejected")
            .is_some(),
        "no stale-rejection event on the timeline"
    );
    assert!(
        d.system
            .obs()
            .first_event_at("mgmt.controller.redirector_demoted")
            .is_some(),
        "no demotion event on the timeline"
    );
    // Resynced: the ex-active's controller view converged to the new
    // active's (whatever chain the new active currently holds).
    assert_eq!(
        chain_at(&d, d.rd_a),
        chain_at(&d, d.rd_b),
        "ex-active table did not resync to the new active's"
    );
}

/// Redirector failover is a pure function of the seed: identical seeds
/// replay identical event counts and telemetry through a full
/// crash-promote-flip cycle.
#[test]
fn failover_is_deterministic() {
    let run = |seed: u64| {
        let mut d = deploy(seed);
        let payload: Vec<u8> = (0..30_000).map(|i| (i % 251) as u8).collect();
        let crash_at = d
            .system
            .sim
            .now()
            .saturating_add(SimDuration::from_millis(50));
        let plan = FaultPlan::new().crash(d.rd_a, crash_at);
        let (bytes, intact) = run_transfer(&mut d, &payload, plan, SimTime::from_secs(30));
        let events = d.system.sim.stats().events_processed;
        (
            bytes,
            intact,
            events,
            d.system.telemetry_json("rd_failover"),
        )
    };
    let a = run(7);
    let b = run(7);
    assert!(a.1, "reply stream must be intact");
    assert_eq!(a.0, b.0, "byte counts diverged");
    assert_eq!(a.2, b.2, "event counts diverged");
    assert_eq!(a.3, b.3, "telemetry timelines diverged");
}
