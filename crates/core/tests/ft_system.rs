//! End-to-end fault-tolerance tests against the assembled system: a
//! mid-chain backup crash under load, and the deterministic-replay
//! guarantee the README advertises.

use hydranet_core::prelude::*;

const CLIENT: IpAddr = IpAddr::new(10, 0, 1, 1);
const RD: IpAddr = IpAddr::new(10, 9, 0, 1);
const HS: [IpAddr; 3] = [
    IpAddr::new(10, 0, 2, 1),
    IpAddr::new(10, 0, 3, 1),
    IpAddr::new(10, 0, 4, 1),
];

fn service() -> SockAddr {
    SockAddr::new(IpAddr::new(192, 20, 225, 20), 80)
}

struct Deployment {
    system: System,
    client: NodeId,
    rd: NodeId,
    replicas: Vec<NodeId>,
    sinks: Vec<Shared<SinkState>>,
}

/// A converged 3-replica echo chain behind a redirector.
fn deploy(seed: u64) -> Deployment {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("client", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let replicas: Vec<NodeId> = HS
        .iter()
        .enumerate()
        .map(|(i, addr)| b.add_host_server(&format!("hs{}", i + 1), *addr, RD))
        .collect();
    b.link(client, rd, LinkParams::default());
    for &r in &replicas {
        b.link(rd, r, LinkParams::default());
    }
    let sinks: Vec<Shared<SinkState>> = (0..replicas.len())
        .map(|_| shared(SinkState::default()))
        .collect();
    let detector = DetectorParams::new(4, SimDuration::from_secs(60));
    let base = FtServiceSpec::new(service(), replicas.clone(), detector);
    for (i, &replica) in replicas.iter().enumerate() {
        let sink = sinks[i].clone();
        let mut one = FtServiceSpec {
            chain: vec![replica],
            ..base.clone()
        };
        one.registration_start = base
            .registration_start
            .saturating_add(base.registration_stagger * i as u64);
        b.deploy_ft_service(&one, move |_q| Box::new(EchoApp::new(sink.clone())));
    }
    let mut system = b.build(seed);
    assert!(
        system.wait_for_chain(rd, service(), replicas.len(), SimTime::from_secs(3)),
        "chain failed to form"
    );
    Deployment {
        system,
        client,
        rd,
        replicas,
        sinks,
    }
}

/// Streams `payload` through the chain, runs `plan`, and polls until the
/// client has the full echo or `deadline`. Returns (reply bytes, intact).
fn run_transfer(
    d: &mut Deployment,
    payload: &[u8],
    plan: FaultPlan,
    deadline: SimTime,
) -> (usize, bool) {
    let state = shared(SenderState::default());
    let app = StreamSenderApp::new(payload.to_vec(), false, state.clone());
    d.system.connect_client(d.client, service(), Box::new(app));
    plan.apply(&mut d.system);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline {
        if state.borrow().replies.data.len() >= payload.len() {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(10));
        d.system.sim.run_until(step);
    }
    let st = state.borrow();
    (st.replies.data.len(), st.replies.data == payload)
}

/// The paper's signature scenario, aimed at the middle of the chain: a
/// backup that is neither head nor tail dies while a transfer is in full
/// flight. The estimator must notice (via the ack channel going quiet), the
/// redirector must splice it out, and — critically — the surviving tail
/// must not be left with a permanently gated deposit buffer: both survivors
/// must consume the complete client stream and the client must see the
/// complete echo, exactly once.
#[test]
fn mid_chain_backup_crash_under_load() {
    let mut d = deploy(42);
    let payload: Vec<u8> = (0..60_000).map(|i| (i % 251) as u8).collect();
    let victim = d.replicas[1];
    let plan = FaultPlan::new().crash(victim, SimTime::from_millis(60));

    let (bytes, intact) = run_transfer(&mut d, &payload, plan, SimTime::from_secs(30));
    assert_eq!(bytes, payload.len(), "client reply stream incomplete");
    assert!(intact, "client reply stream corrupted or reordered");

    // The redirector spliced the dead backup out of the chain.
    let chain: Vec<IpAddr> = d
        .system
        .redirector(d.rd)
        .controller()
        .chain(service())
        .expect("service still installed")
        .to_vec();
    assert_eq!(
        chain,
        vec![HS[0], HS[2]],
        "chain did not splice to head+tail"
    );
    assert!(
        d.system.redirector(d.rd).controller().reconfigurations() > 0,
        "no reconfiguration recorded"
    );
    // A mid-chain splice promotes nobody (the head stays head), so there is
    // no detect->promote latency — but the detector must have fired and the
    // controller must have removed the dead host.
    assert!(
        d.system
            .obs()
            .first_event_at("tcp.detector.suspected")
            .is_some(),
        "estimator never suspected the dead backup"
    );
    assert!(
        d.system
            .obs()
            .first_event_at("mgmt.controller.host_removed")
            .is_some(),
        "controller never removed the dead backup"
    );

    // No permanently gated deposit buffer: both survivors consumed the
    // entire client stream even though their chain positions changed
    // mid-transfer.
    assert_eq!(d.sinks[0].borrow().data, payload, "head sink incomplete");
    assert_eq!(d.sinks[2].borrow().data, payload, "tail sink incomplete");
}

/// A deliberately tiny flight recorder must evict retired spans under a
/// traced failover, and the eviction counter must surface (next to
/// `SimStats::trace_dropped`) in the telemetry JSON. The event-attribution
/// profiler rides along: every simulated event lands in exactly one
/// subsystem bucket, and the hot subsystems are non-empty.
#[test]
fn traced_run_surfaces_evictions_and_attribution() {
    let mut d = deploy(42);
    // Cap of 4 retired spans: ack-channel flushes and redirector fan-outs
    // alone retire far more than that during a 60 kB transfer.
    d.system.enable_tracing(4);
    d.system.enable_profiler();
    let events_before_profiling = d.system.sim.stats().events_processed;
    let payload: Vec<u8> = (0..60_000).map(|i| (i % 251) as u8).collect();
    let plan = FaultPlan::new().crash(d.replicas[1], SimTime::from_millis(60));
    let (bytes, intact) = run_transfer(&mut d, &payload, plan, SimTime::from_secs(30));
    assert_eq!(bytes, payload.len(), "client reply stream incomplete");
    assert!(intact, "client reply stream corrupted");

    // Cap-and-evict: the ring stayed bounded and counted what it shed.
    let evicted = d.system.obs().trace_evicted();
    assert!(evicted > 0, "tiny flight recorder never evicted");
    let json = d.system.telemetry_json("traced");
    assert!(
        json.contains(&format!("\"flight_recorder_evicted\": \"{evicted}\"")),
        "eviction counter missing from telemetry meta: {json}"
    );
    assert!(json.contains("\"trace_dropped\""), "{json}");

    // The flight recorder still dumps (newest spans survive), and the
    // Chrome export is well-formed enough to contain span records.
    let dump = d.system.obs().flight_recorder_json(&[]);
    assert!(dump.contains("\"evicted\""), "{dump}");
    assert!(!d.system.obs().chrome_trace_json().is_empty());

    // Attribution: every processed event is in exactly one bucket, and the
    // subsystems this scenario exercises are all non-empty.
    let profiler = d.system.sim.profiler();
    assert_eq!(
        profiler.total_events(),
        d.system.sim.stats().events_processed - events_before_profiling,
        "profiler lost or double-counted events"
    );
    let snapshot = profiler.snapshot();
    for subsystem in ["tcp_data", "tcp_ack", "ack_channel", "timers", "redirector"] {
        let (_, stats) = snapshot
            .iter()
            .find(|(name, _)| *name == subsystem)
            .expect("category present");
        assert!(stats.events > 0, "no events attributed to {subsystem}");
    }
}

/// Every run is a pure function of the topology and one RNG seed: repeating
/// the same crash scenario with the same seed replays the identical event
/// sequence, byte counts, and telemetry timeline.
#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let mut d = deploy(seed);
        let payload: Vec<u8> = (0..30_000).map(|i| (i % 251) as u8).collect();
        let plan = FaultPlan::new().crash(d.replicas[1], SimTime::from_millis(60));
        let (bytes, intact) = run_transfer(&mut d, &payload, plan, SimTime::from_secs(30));
        let events = d.system.sim.stats().events_processed;
        let timeline = d.system.telemetry_json("deterministic_replay");
        (bytes, intact, events, timeline)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.0, b.0, "byte counts diverged");
    assert_eq!(a.2, b.2, "event counts diverged");
    assert_eq!(a.3, b.3, "telemetry timelines diverged");
    assert!(a.1, "reply stream must be intact");

    // A different seed still completes, but is allowed to (and in practice
    // does) schedule differently.
    let c = run(8);
    assert!(c.1, "reply stream must be intact under any seed");
}
