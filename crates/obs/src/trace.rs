//! Causal trace spans and the crash-dump flight recorder.
//!
//! The paper's §4.3 fail-over argument is causal — a segment arrives at a
//! backup, a (SEQ, ACK) report crosses the ack channel, the deposit and
//! transmission gates advance — but counters and a flat timeline cannot
//! answer "*which* connection wedged, and what was the last packet it
//! saw?". This module adds:
//!
//! - **spans**: named intervals of simulated time with parent/child
//!   causality (connection lifecycle, the fail-over phases
//!   crash→detect→report→promote→reconverge, redirector multicast fan-out,
//!   ack-channel flushes), each carrying a bounded list of timestamped
//!   key/value notes;
//! - a **flight recorder**: retired spans live in a bounded ring (like the
//!   PR 1 packet trace) with an eviction counter, so tracing through a
//!   multi-second chaos run costs capped memory; on an invariant violation
//!   the whole thing dumps as self-contained JSON — the failing seed's
//!   causal story without a re-run;
//! - **Chrome trace export**: the same spans as chrome://tracing
//!   `traceEvents` JSON;
//! - a **span fingerprint**: an FNV-1a hash over the canonical span
//!   serialisation, containing only simulated time — the determinism
//!   guard pins it bit-identical across thread counts and calendar
//!   backends.
//!
//! Everything here is sim-time only (`u64` nanoseconds); no wall clock
//! ever enters a span, so traces are bit-identical across runs.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::json;

/// Span categories get stable Chrome-trace thread ids so each family
/// renders as its own track.
fn chrome_tid(cat: &str) -> u64 {
    match cat {
        "conn" => 1,
        "failover" => 2,
        "redirect" => 3,
        "ackchan" => 4,
        _ => 9,
    }
}

/// One span: a named interval of simulated time with causal parentage and
/// bounded notes. `end_nanos == None` means the span never closed — for a
/// flight-recorder dump that is the interesting case (a wedged
/// connection's span is still open when the invariants fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Recorder-unique id, assigned in open order.
    pub id: u64,
    /// Parent span id, when opened with a causal parent.
    pub parent: Option<u64>,
    /// Category: `conn`, `failover`, `redirect`, `ackchan`, …
    pub cat: String,
    /// Display name (a quad, a phase name, a service address).
    pub name: String,
    /// Open instant, simulated nanoseconds.
    pub start_nanos: u64,
    /// Close instant, if the span closed.
    pub end_nanos: Option<u64>,
    /// Timestamped key/value annotations, oldest evicted past the cap.
    pub notes: Vec<(u64, String, String)>,
}

impl Span {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"id\": ");
        json::push_u64(out, self.id);
        out.push_str(", \"parent\": ");
        match self.parent {
            Some(p) => json::push_u64(out, p),
            None => out.push_str("null"),
        }
        out.push_str(", \"cat\": ");
        json::push_string(out, &self.cat);
        out.push_str(", \"name\": ");
        json::push_string(out, &self.name);
        out.push_str(", \"start_nanos\": ");
        json::push_u64(out, self.start_nanos);
        out.push_str(", \"end_nanos\": ");
        match self.end_nanos {
            Some(e) => json::push_u64(out, e),
            None => out.push_str("null"),
        }
        out.push_str(", \"notes\": [");
        for (i, (at, k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            json::push_u64(out, *at);
            out.push_str(", ");
            json::push_string(out, k);
            out.push_str(", ");
            json::push_string(out, v);
            out.push(']');
        }
        out.push_str("]}");
    }

    fn fingerprint_into(&self, acc: &mut u64) {
        fnv_u64(acc, self.id);
        fnv_u64(acc, self.parent.map_or(u64::MAX, |p| p));
        fnv_str(acc, &self.cat);
        fnv_str(acc, &self.name);
        fnv_u64(acc, self.start_nanos);
        fnv_u64(acc, self.end_nanos.map_or(u64::MAX, |e| e));
        for (at, k, v) in &self.notes {
            fnv_u64(acc, *at);
            fnv_str(acc, k);
            fnv_str(acc, v);
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_byte(acc: &mut u64, b: u8) {
    *acc ^= u64::from(b);
    *acc = acc.wrapping_mul(FNV_PRIME);
}

fn fnv_u64(acc: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        fnv_byte(acc, b);
    }
}

fn fnv_str(acc: &mut u64, s: &str) {
    for &b in s.as_bytes() {
        fnv_byte(acc, b);
    }
    fnv_byte(acc, 0xFF); // field separator
}

/// Notes kept per span; older notes are dropped first, so the *last*
/// lineage-linked packet a wedged connection saw always survives.
pub const NOTES_PER_SPAN: usize = 16;

/// The tracer state behind an enabled [`crate::Obs`]: open spans keyed by
/// caller-chosen strings, plus the bounded ring of retired spans.
#[derive(Debug)]
pub struct TraceData {
    next_id: u64,
    /// Open spans by key. `BTreeMap` for deterministic iteration order in
    /// dumps and fingerprints.
    open: BTreeMap<String, Span>,
    /// Retired spans, oldest first; bounded at `capacity`.
    ring: VecDeque<Span>,
    capacity: usize,
    evicted: u64,
    /// Fail-over phase machine: the id of the open root span, if any.
    failover_root: Option<u64>,
}

impl TraceData {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceData {
            next_id: 0,
            open: BTreeMap::new(),
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
            failover_root: None,
        }
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }

    fn retire(&mut self, span: Span) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(span);
    }

    /// Opens a span. Re-opening a live key retires the old span first (a
    /// reused connection quad starts a fresh lifecycle span). Returns the
    /// new span's id.
    pub(crate) fn open(
        &mut self,
        key: &str,
        cat: &str,
        name: &str,
        parent: Option<u64>,
        at_nanos: u64,
    ) -> u64 {
        if let Some(old) = self.open.remove(key) {
            self.retire(old);
        }
        // The open-span map is bounded by the same capacity as the ring:
        // past it, the oldest open span is force-retired (still open —
        // `end_nanos` stays `None` in the ring).
        if self.open.len() >= self.capacity {
            if let Some(oldest_key) = self
                .open
                .iter()
                .min_by_key(|(_, s)| s.id)
                .map(|(k, _)| k.clone())
            {
                let old = self.open.remove(&oldest_key).expect("key just found");
                self.retire(old);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            key.to_string(),
            Span {
                id,
                parent,
                cat: cat.to_string(),
                name: name.to_string(),
                start_nanos: at_nanos,
                end_nanos: None,
                notes: Vec::new(),
            },
        );
        id
    }

    /// The id of the open span under `key`, if any.
    pub(crate) fn open_id(&self, key: &str) -> Option<u64> {
        self.open.get(key).map(|s| s.id)
    }

    /// Closes the span under `key` (no-op when absent) and retires it.
    pub(crate) fn close(&mut self, key: &str, at_nanos: u64) {
        if let Some(mut span) = self.open.remove(key) {
            span.end_nanos = Some(at_nanos.max(span.start_nanos));
            self.retire(span);
        }
    }

    /// Appends a timestamped note to the open span under `key` (no-op when
    /// absent). Past [`NOTES_PER_SPAN`], the oldest note is dropped.
    pub(crate) fn note(&mut self, key: &str, at_nanos: u64, k: &str, v: String) {
        if let Some(span) = self.open.get_mut(key) {
            if span.notes.len() >= NOTES_PER_SPAN {
                span.notes.remove(0);
            }
            span.notes.push((at_nanos, k.to_string(), v));
        }
    }

    /// Feeds one timeline event into the fail-over phase machine: the
    /// well-known kinds (`netsim.node.crashed` → `tcp.detector.suspected`
    /// → `mgmt.daemon.failure_reported` → `mgmt.daemon.promoted` →
    /// `mgmt.controller.chain_reconfigured`) open and close the
    /// crash→detect→report→promote→reconverge phase spans with zero
    /// cross-component coordination. Out-of-order or repeated kinds are
    /// ignored — only the first fail-over is spanned.
    pub(crate) fn on_event(&mut self, at_nanos: u64, kind: &str, fields: &[(&str, String)]) {
        let note_fields = |span: &mut Span, at: u64| {
            for (k, v) in fields {
                if span.notes.len() >= NOTES_PER_SPAN {
                    span.notes.remove(0);
                }
                span.notes.push((at, (*k).to_string(), v.clone()));
            }
        };
        match kind {
            crate::kinds::NODE_CRASHED if self.failover_root.is_none() => {
                let root = self.open("failover", "failover", "crash→reconverge", None, at_nanos);
                self.failover_root = Some(root);
                self.open(
                    "failover/detect",
                    "failover",
                    "detect",
                    Some(root),
                    at_nanos,
                );
                if let Some(span) = self.open.get_mut("failover") {
                    note_fields(span, at_nanos);
                }
            }
            crate::kinds::DETECTOR_SUSPECTED => {
                if let Some(root) = self.failover_root {
                    if self.open.contains_key("failover/detect") {
                        if let Some(span) = self.open.get_mut("failover/detect") {
                            note_fields(span, at_nanos);
                        }
                        self.close("failover/detect", at_nanos);
                        self.open(
                            "failover/report",
                            "failover",
                            "report",
                            Some(root),
                            at_nanos,
                        );
                    }
                }
            }
            crate::kinds::FAILURE_REPORTED => {
                if let Some(root) = self.failover_root {
                    if self.open.contains_key("failover/report") {
                        if let Some(span) = self.open.get_mut("failover/report") {
                            note_fields(span, at_nanos);
                        }
                        self.close("failover/report", at_nanos);
                        self.open(
                            "failover/promote",
                            "failover",
                            "promote",
                            Some(root),
                            at_nanos,
                        );
                    }
                }
            }
            crate::kinds::PROMOTED => {
                if let Some(root) = self.failover_root {
                    if self.open.contains_key("failover/promote") {
                        if let Some(span) = self.open.get_mut("failover/promote") {
                            note_fields(span, at_nanos);
                        }
                        self.close("failover/promote", at_nanos);
                        self.open(
                            "failover/reconverge",
                            "failover",
                            "reconverge",
                            Some(root),
                            at_nanos,
                        );
                    }
                }
            }
            crate::kinds::CHAIN_RECONFIGURED
                if self.failover_root.is_some()
                    && self.open.contains_key("failover/reconverge") =>
            {
                if let Some(span) = self.open.get_mut("failover/reconverge") {
                    note_fields(span, at_nanos);
                }
                self.close("failover/reconverge", at_nanos);
                self.close("failover", at_nanos);
            }
            _ => {}
        }
    }

    /// Serialises the flight recorder — retired ring plus still-open spans
    /// — as a self-contained JSON document with caller-supplied metadata.
    pub(crate) fn write_flight_json(&self, out: &mut String, meta: &[(&str, String)]) {
        out.push_str("{\n\"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_string(out, k);
            out.push_str(": ");
            json::push_string(out, v);
        }
        out.push_str("},\n\"capacity\": ");
        json::push_u64(out, self.capacity as u64);
        out.push_str(",\n\"evicted\": ");
        json::push_u64(out, self.evicted);
        out.push_str(",\n\"spans\": [\n");
        for (i, span) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            span.write_json(out);
        }
        out.push_str("\n],\n\"open_spans\": [\n");
        for (i, span) in self.open.values().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            span.write_json(out);
        }
        out.push_str("\n]\n}\n");
    }

    /// Serialises every span as Chrome trace-event JSON (`traceEvents`
    /// array of `"X"` complete events; still-open spans get zero duration
    /// and an `"open": true` arg). Load in chrome://tracing or Perfetto.
    pub(crate) fn write_chrome_json(&self, out: &mut String) {
        out.push_str("{\"traceEvents\": [\n");
        let mut first = true;
        let mut push_span = |out: &mut String, span: &Span, open: bool| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  {\"name\": ");
            json::push_string(out, &span.name);
            out.push_str(", \"cat\": ");
            json::push_string(out, &span.cat);
            out.push_str(", \"ph\": \"X\", \"ts\": ");
            json::push_f64(out, span.start_nanos as f64 / 1e3);
            out.push_str(", \"dur\": ");
            let dur = span.end_nanos.map_or(0, |e| e - span.start_nanos);
            json::push_f64(out, dur as f64 / 1e3);
            out.push_str(", \"pid\": 1, \"tid\": ");
            json::push_u64(out, chrome_tid(&span.cat));
            out.push_str(", \"args\": {\"id\": ");
            json::push_u64(out, span.id);
            out.push_str(", \"parent\": ");
            match span.parent {
                Some(p) => json::push_u64(out, p),
                None => out.push_str("null"),
            }
            if open {
                out.push_str(", \"open\": true");
            }
            for (at, k, v) in &span.notes {
                out.push_str(", ");
                json::push_string(out, &format!("{k}@{at}"));
                out.push_str(": ");
                json::push_string(out, v);
            }
            out.push_str("}}");
        };
        for span in &self.ring {
            push_span(out, span, false);
        }
        for span in self.open.values() {
            push_span(out, span, true);
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    }

    /// FNV-1a over the canonical serialisation of every span (retired ring
    /// in order, then open spans in key order). Pure simulated time — the
    /// determinism guard pins this across thread counts and calendar
    /// backends.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut acc = FNV_OFFSET;
        for span in &self.ring {
            span.fingerprint_into(&mut acc);
        }
        for span in self.open.values() {
            span.fingerprint_into(&mut acc);
        }
        acc
    }

    /// Total spans opened so far.
    pub(crate) fn spans_opened(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_retires_in_order() {
        let mut t = TraceData::new(8);
        let a = t.open("a", "conn", "a", None, 10);
        let b = t.open("b", "conn", "b", Some(a), 20);
        assert_eq!(t.open_id("a"), Some(a));
        t.close("a", 30);
        t.close("b", 40);
        assert_eq!(t.ring.len(), 2);
        assert_eq!(t.ring[0].id, a);
        assert_eq!(t.ring[0].end_nanos, Some(30));
        assert_eq!(t.ring[1].parent, Some(a));
        assert_eq!(t.ring[1].id, b);
        assert!(t.open.is_empty());
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn ring_caps_and_evicts_oldest() {
        let mut t = TraceData::new(4);
        for i in 0..7u64 {
            t.open(&format!("s{i}"), "conn", &format!("s{i}"), None, i);
            t.close(&format!("s{i}"), i + 1);
        }
        assert_eq!(t.ring.len(), 4);
        assert_eq!(t.evicted(), 3);
        // Oldest three gone; newest four retained in order.
        let names: Vec<&str> = t.ring.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s3", "s4", "s5", "s6"]);
    }

    #[test]
    fn notes_are_bounded_keeping_newest() {
        let mut t = TraceData::new(4);
        t.open("k", "conn", "k", None, 0);
        for i in 0..(NOTES_PER_SPAN as u64 + 5) {
            t.note("k", i, "seq", i.to_string());
        }
        let span = t.open.get("k").unwrap();
        assert_eq!(span.notes.len(), NOTES_PER_SPAN);
        // The newest note survives; the oldest five were dropped.
        assert_eq!(
            span.notes.last().unwrap().2,
            (NOTES_PER_SPAN + 4).to_string()
        );
        assert_eq!(span.notes[0].2, "5");
    }

    #[test]
    fn reopening_a_live_key_retires_the_old_span() {
        let mut t = TraceData::new(4);
        let first = t.open("k", "conn", "gen1", None, 0);
        let second = t.open("k", "conn", "gen2", None, 10);
        assert_ne!(first, second);
        assert_eq!(t.ring.len(), 1);
        assert_eq!(t.ring[0].name, "gen1");
        assert_eq!(t.ring[0].end_nanos, None, "force-retired spans stay open");
        assert_eq!(t.open_id("k"), Some(second));
    }

    #[test]
    fn failover_phase_machine_builds_the_span_tree() {
        let mut t = TraceData::new(32);
        t.on_event(100, crate::kinds::NODE_CRASHED, &[("node", "n2".into())]);
        t.on_event(200, crate::kinds::DETECTOR_SUSPECTED, &[]);
        t.on_event(250, crate::kinds::FAILURE_REPORTED, &[]);
        t.on_event(300, crate::kinds::PROMOTED, &[("host", "10.0.3.1".into())]);
        t.on_event(400, crate::kinds::CHAIN_RECONFIGURED, &[]);
        assert!(t.open.is_empty(), "all phases closed");
        let names: Vec<&str> = t.ring.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "detect",
                "report",
                "promote",
                "reconverge",
                "crash→reconverge"
            ]
        );
        let root_id = t.ring.back().unwrap().id;
        assert!(t.ring.iter().take(4).all(|s| s.parent == Some(root_id)));
        assert_eq!(t.ring[0].start_nanos, 100);
        assert_eq!(t.ring[0].end_nanos, Some(200));
        assert_eq!(t.ring[3].end_nanos, Some(400));
        // A second crash does not re-open the machine.
        t.on_event(500, crate::kinds::NODE_CRASHED, &[]);
        assert!(t.open.is_empty());
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let build = |notes: bool| {
            let mut t = TraceData::new(8);
            t.open("a", "conn", "a", None, 1);
            if notes {
                t.note("a", 2, "k", "v".into());
            }
            t.close("a", 3);
            t.fingerprint()
        };
        assert_eq!(build(false), build(false));
        assert_ne!(build(false), build(true));
    }

    #[test]
    fn flight_json_and_chrome_json_are_well_formed() {
        let mut t = TraceData::new(4);
        let root = t.open("f", "failover", "crash→reconverge", None, 1_000);
        t.open(
            "c",
            "conn",
            "10.0.1.1:40000-192.20.225.20:80",
            Some(root),
            2_000,
        );
        t.note("c", 2_500, "last_rx_lineage", "0x2a".into());
        t.close("f", 9_000);
        let mut flight = String::new();
        t.write_flight_json(&mut flight, &[("scenario", "test".into())]);
        for needle in [
            "\"scenario\": \"test\"",
            "\"evicted\": 0",
            "\"open_spans\": [",
            "10.0.1.1:40000-192.20.225.20:80",
            "last_rx_lineage",
            "\"end_nanos\": null",
        ] {
            assert!(flight.contains(needle), "missing {needle} in {flight}");
        }
        let mut chrome = String::new();
        t.write_chrome_json(&mut chrome);
        for needle in [
            "\"traceEvents\": [",
            "\"ph\": \"X\"",
            "\"ts\": 1",
            "\"dur\": 8",
            "\"open\": true",
        ] {
            assert!(chrome.contains(needle), "missing {needle} in {chrome}");
        }
    }
}
