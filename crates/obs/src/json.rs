//! A minimal hand-rolled JSON writer — just enough to export telemetry
//! without external dependencies.
//!
//! Only the pieces the report format needs: string escaping and number
//! formatting. Documents are assembled by pushing into a `String`.

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Non-finite floats become `null` (JSON has
/// no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 always produces a valid JSON number for finite values.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `v` as a JSON number.
pub fn push_u64(out: &mut String, v: u64) {
    out.push_str(&format!("{v}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn string(s: &str) -> String {
        let mut out = String::new();
        push_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_format() {
        let mut out = String::new();
        push_u64(&mut out, 42);
        out.push(' ');
        push_f64(&mut out, 1.5);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "42 1.5 null");
    }
}
