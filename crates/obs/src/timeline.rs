//! The structured event timeline: an ordered record of what happened to
//! the replicated service, stamped with simulated time.
//!
//! A single fail-over replays from the timeline as the paper's narrative:
//! `tcp.detector.suspected` → `mgmt.daemon.failure_reported` →
//! `mgmt.controller.probe_started` → `mgmt.controller.host_removed` →
//! `mgmt.controller.chain_reconfigured` → `redirect.table.installed` →
//! `mgmt.daemon.promoted`. Events at the same instant keep their insertion
//! order (each carries a monotonically increasing `seq`).

use crate::json;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Simulated nanoseconds since simulation start.
    pub at_nanos: u64,
    /// Insertion index — total order even at equal timestamps.
    pub seq: u64,
    /// Event kind, dotted taxonomy (see [`crate::kinds`]).
    pub kind: String,
    /// Free-form key/value detail fields.
    pub fields: Vec<(String, String)>,
}

impl TimelineEvent {
    /// The value of detail field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An append-only event log.
#[derive(Debug, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    next_seq: u64,
}

impl Timeline {
    /// Appends an event.
    pub fn push(&mut self, at_nanos: u64, kind: &str, fields: &[(&str, String)]) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(TimelineEvent {
            at_nanos,
            seq,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// The timestamp of the first event of `kind`.
    pub fn first_at(&self, kind: &str) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.kind == kind)
            .map(|e| e.at_nanos)
    }

    /// Serialises the timeline as a JSON array, one object per event.
    pub fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"at_nanos\": ");
            json::push_u64(out, e.at_nanos);
            out.push_str(", \"seq\": ");
            json::push_u64(out, e.seq);
            out.push_str(", \"kind\": ");
            json::push_string(out, &e.kind);
            for (k, v) in &e.fields {
                out.push_str(", ");
                json::push_string(out, k);
                out.push_str(": ");
                json::push_string(out, v);
            }
            out.push('}');
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_timestamps_keep_insertion_order() {
        let mut t = Timeline::default();
        t.push(500, "b.second", &[]);
        t.push(500, "a.first", &[]);
        t.push(500, "c.third", &[]);
        let kinds: Vec<&str> = t.events().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["b.second", "a.first", "c.third"]);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn fields_are_queryable() {
        let mut t = Timeline::default();
        t.push(1, "x", &[("host", "10.0.2.1".into()), ("idx", "0".into())]);
        let e = &t.events()[0];
        assert_eq!(e.field("host"), Some("10.0.2.1"));
        assert_eq!(e.field("idx"), Some("0"));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn first_at_finds_earliest() {
        let mut t = Timeline::default();
        t.push(10, "k", &[]);
        t.push(20, "k", &[]);
        assert_eq!(t.first_at("k"), Some(10));
        assert_eq!(t.first_at("other"), None);
    }

    #[test]
    fn json_array_shape() {
        let mut t = Timeline::default();
        t.push(7, "a.b", &[("k", "v\"q".into())]);
        let mut out = String::new();
        t.write_json(&mut out);
        assert!(out.starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains("\"kind\": \"a.b\""));
        assert!(out.contains("\\\"q"));
        let mut empty = String::new();
        Timeline::default().write_json(&mut empty);
        assert_eq!(empty, "[]");
    }
}
