//! # hydranet-obs
//!
//! A zero-dependency, simulation-time-aware telemetry layer for the
//! HydraNet-FT reproduction. The paper's claims are quantitative —
//! detection latency vs. retransmission threshold, ack-channel gating
//! overhead, client-invisible fail-over time — so every layer of the stack
//! records into a shared [`Obs`] handle:
//!
//! - a **metrics registry** ([`metrics`]) of named counters, gauges, and
//!   fixed-bucket histograms (p50/p90/p99/p999/max), cheap enough for the
//!   event-loop hot path (handles are `Rc<Cell>`s; a disabled handle is a
//!   no-op);
//! - a **structured event timeline** ([`timeline`]) of detector state
//!   transitions, chain reconfigurations, promotions, and redirector table
//!   updates, stamped with simulated time, so a fail-over replays as an
//!   ordered `detect → remove → promote → resume` narrative;
//! - **JSON export** ([`json`], [`Obs::to_json`]) of registry + timeline
//!   per scenario run, consumed by the bench binaries.
//!
//! Timestamps are plain `u64` nanoseconds of simulated time so this crate
//! sits below `hydranet-netsim` in the dependency graph (convert with
//! `SimTime::as_nanos()` at call sites).
//!
//! Metric names follow the `layer.component.name` convention documented in
//! DESIGN.md, e.g. `tcp.conn.10.0.1.1:40000-192.20.225.20:80.rto_us`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod timeline;
pub mod trace;

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use metrics::{Counter, Gauge, Histogram, Registry};
use timeline::{Timeline, TimelineEvent};
use trace::TraceData;

/// Well-known timeline event kinds (the taxonomy documented in DESIGN.md).
pub mod kinds {
    /// A duplicate client segment was observed by a backup's detector.
    pub const DETECTOR_DUPLICATE: &str = "tcp.detector.duplicate";
    /// The detector crossed its threshold and suspects the primary.
    pub const DETECTOR_SUSPECTED: &str = "tcp.detector.suspected";
    /// Forward progress cleared the detector's duplicate window.
    pub const DETECTOR_CLEARED: &str = "tcp.detector.cleared";
    /// A deposit gate released bytes that had been stalled in the gated
    /// receive buffer of a backup.
    pub const GATE_STALL: &str = "tcp.gate.stall";
    /// A host daemon forwarded a failure suspicion to its redirectors.
    pub const FAILURE_REPORTED: &str = "mgmt.daemon.failure_reported";
    /// A host daemon registered a replica with a redirector.
    pub const REPLICA_REGISTERED: &str = "mgmt.daemon.registered";
    /// A host daemon applied a `SetRole(index = 0)` — primary promotion.
    pub const PROMOTED: &str = "mgmt.daemon.promoted";
    /// The controller started a probe round after a failure report.
    pub const PROBE_STARTED: &str = "mgmt.controller.probe_started";
    /// The controller removed an unresponsive host from a chain.
    pub const HOST_REMOVED: &str = "mgmt.controller.host_removed";
    /// The controller committed a reconfigured chain.
    pub const CHAIN_RECONFIGURED: &str = "mgmt.controller.chain_reconfigured";
    /// A fault-tolerant entry was installed in a redirector table.
    pub const TABLE_INSTALLED: &str = "redirect.table.installed";
    /// An entry was removed from a redirector table.
    pub const TABLE_REMOVED: &str = "redirect.table.removed";
    /// A simulated node crashed (fail-stop).
    pub const NODE_CRASHED: &str = "netsim.node.crashed";
    /// A simulated node recovered.
    pub const NODE_RECOVERED: &str = "netsim.node.recovered";
    /// A link went down.
    pub const LINK_DOWN: &str = "netsim.link.down";
    /// A link came back up.
    pub const LINK_UP: &str = "netsim.link.up";
    /// A link's impairment set was replaced (scheduled or immediate).
    pub const LINK_IMPAIRED: &str = "netsim.link.impaired";
    /// A fault plan injected a fault (one event per plan action).
    pub const FAULT_INJECTED: &str = "faults.injected";
    /// A standby redirector promoted itself to active after losing its peer.
    pub const REDIRECTOR_PROMOTED: &str = "mgmt.controller.redirector_promoted";
    /// An ex-active redirector demoted itself after meeting a newer epoch.
    pub const REDIRECTOR_DEMOTED: &str = "mgmt.controller.redirector_demoted";
    /// A replicated table update carried a stale epoch and was rejected.
    pub const STALE_EPOCH_REJECTED: &str = "mgmt.controller.stale_epoch_rejected";
}

/// Well-known metric names published by the parallel experiment engine
/// (`hydranet-bench::runner`). Kept here so the registry keys used by the
/// bench crate and asserted on by telemetry consumers live in one place.
pub mod runner_metrics {
    /// Counter: total tasks completed by the worker pool.
    pub const TASKS_COMPLETED: &str = "runner.tasks_completed";
    /// Counter: summed busy wall-clock nanoseconds across all workers.
    pub const WORKER_BUSY_NANOS: &str = "runner.worker_busy_nanos";
    /// Counter: wall-clock nanoseconds for the whole pool run.
    pub const WALL_NANOS: &str = "runner.wall_nanos";
    /// Gauge: number of worker threads used.
    pub const THREADS: &str = "runner.threads";
    /// Gauge: pool utilization, `worker_busy / (wall * threads)` in `[0, 1]`.
    pub const UTILIZATION: &str = "runner.utilization";
    /// Gauge: aggregate simulated events per wall-clock second.
    pub const EVENTS_PER_SEC: &str = "runner.events_per_sec";
    /// Histogram: per-task wall-clock nanoseconds.
    pub const TASK_NANOS: &str = "runner.task_nanos";
}

#[derive(Debug, Default)]
struct Inner {
    registry: Registry,
    timeline: Timeline,
    /// The causal tracer + flight recorder, present only after
    /// [`Obs::enable_tracing`] — tracing is off by default even on an
    /// enabled handle.
    trace: Option<TraceData>,
}

/// A shared telemetry handle.
///
/// `Obs` is cheap to clone (an `Rc`); all clones record into the same
/// registry and timeline. The [`Default`] value is **disabled**: every
/// operation is a no-op and handles it returns are no-ops, so components
/// can hold an `Obs` unconditionally without wiring overhead when
/// telemetry is off.
///
/// # Examples
///
/// ```
/// use hydranet_obs::Obs;
///
/// let obs = Obs::enabled();
/// let c = obs.counter("tcp.stack.segments_rx");
/// c.inc();
/// obs.event(1_000, "tcp.detector.suspected", &[("quad", "a-b".into())]);
/// assert!(obs.to_json().contains("tcp.detector.suspected"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Rc<RefCell<Inner>>>,
    /// Shared tracing flag, readable without borrowing `inner`: hot paths
    /// check this one `Cell` read before building any span/note arguments,
    /// so disabled tracing costs a load and a branch.
    tracing: Rc<Cell<bool>>,
}

impl Obs {
    /// Creates a live telemetry handle.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
            tracing: Rc::new(Cell::new(false)),
        }
    }

    /// A disabled handle (same as `Obs::default()`); every call is a no-op.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns (creating if needed) the counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(rc) => rc.borrow_mut().registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Returns (creating if needed) the gauge handle for `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(rc) => rc.borrow_mut().registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Returns (creating if needed) the histogram handle for `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(rc) => rc.borrow_mut().registry.histogram(name),
            None => Histogram::default(),
        }
    }

    /// One-shot counter increment (does a name lookup; prefer holding a
    /// [`Counter`] handle on hot paths).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// One-shot gauge set.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// One-shot histogram record.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Appends a timeline event at `at_nanos` simulated nanoseconds.
    ///
    /// Events recorded at the same instant keep their insertion order.
    /// When tracing is enabled, well-known fail-over kinds also drive the
    /// crash→detect→report→promote→reconverge phase spans (see
    /// [`trace`]), so the fail-over span tree assembles itself from the
    /// events every layer already emits.
    pub fn event(&self, at_nanos: u64, kind: &str, fields: &[(&str, String)]) {
        if let Some(rc) = &self.inner {
            let mut inner = rc.borrow_mut();
            inner.timeline.push(at_nanos, kind, fields);
            if self.tracing.get() {
                if let Some(t) = inner.trace.as_mut() {
                    t.on_event(at_nanos, kind, fields);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Causal tracing (spans + flight recorder)
    // ------------------------------------------------------------------

    /// Turns the causal tracer on, backing it with a flight-recorder ring
    /// of `capacity` retired spans. Tracing is off by default — even on an
    /// enabled handle — so the data-path span sites cost one flag check
    /// until someone asks for causality. No-op on a disabled handle.
    pub fn enable_tracing(&self, capacity: usize) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().trace = Some(TraceData::new(capacity));
            self.tracing.set(true);
        }
    }

    /// Whether span calls currently record anything. One `Cell` read —
    /// hot paths check this before formatting span names or notes.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.get()
    }

    /// Opens a span under a caller-chosen `key` (e.g. `conn:<quad>`), with
    /// optional causal parentage via the parent's key. Returns the span id
    /// (0 and no-op when tracing is off).
    pub fn span_open(
        &self,
        key: &str,
        cat: &str,
        name: &str,
        parent_key: Option<&str>,
        at_nanos: u64,
    ) -> u64 {
        if !self.tracing.get() {
            return 0;
        }
        let Some(rc) = &self.inner else { return 0 };
        let mut inner = rc.borrow_mut();
        let Some(t) = inner.trace.as_mut() else {
            return 0;
        };
        let parent = parent_key.and_then(|k| t.open_id(k));
        t.open(key, cat, name, parent, at_nanos)
    }

    /// Closes the open span under `key` and retires it into the flight
    /// recorder. No-op when tracing is off or the key is not open.
    pub fn span_close(&self, key: &str, at_nanos: u64) {
        if !self.tracing.get() {
            return;
        }
        if let Some(rc) = &self.inner {
            if let Some(t) = rc.borrow_mut().trace.as_mut() {
                t.close(key, at_nanos);
            }
        }
    }

    /// Appends a timestamped `k = v` note to the open span under `key`.
    /// Bounded per span ([`trace::NOTES_PER_SPAN`], oldest dropped first).
    pub fn span_note(&self, key: &str, at_nanos: u64, k: &str, v: String) {
        if !self.tracing.get() {
            return;
        }
        if let Some(rc) = &self.inner {
            if let Some(t) = rc.borrow_mut().trace.as_mut() {
                t.note(key, at_nanos, k, v);
            }
        }
    }

    /// Spans evicted from the flight-recorder ring so far (the cap-and-
    /// evict counter surfaced next to `SimStats::trace_dropped`).
    pub fn trace_evicted(&self) -> u64 {
        self.with_trace(0, trace::TraceData::evicted)
    }

    /// Total spans opened since tracing was enabled.
    pub fn spans_opened(&self) -> u64 {
        self.with_trace(0, trace::TraceData::spans_opened)
    }

    /// FNV-1a fingerprint of every recorded span (simulated time only) —
    /// what the determinism guard pins across thread counts and calendar
    /// backends. 0 when tracing is off.
    pub fn span_fingerprint(&self) -> u64 {
        self.with_trace(0, trace::TraceData::fingerprint)
    }

    /// Dumps the flight recorder (retired ring + still-open spans) as a
    /// self-contained JSON document. Empty string when tracing is off.
    pub fn flight_recorder_json(&self, meta: &[(&str, String)]) -> String {
        let Some(rc) = &self.inner else {
            return String::new();
        };
        let inner = rc.borrow();
        let Some(t) = inner.trace.as_ref() else {
            return String::new();
        };
        let mut out = String::with_capacity(4096);
        t.write_flight_json(&mut out, meta);
        out
    }

    /// Exports every recorded span as Chrome trace-event JSON for
    /// chrome://tracing. Empty string when tracing is off.
    pub fn chrome_trace_json(&self) -> String {
        let Some(rc) = &self.inner else {
            return String::new();
        };
        let inner = rc.borrow();
        let Some(t) = inner.trace.as_ref() else {
            return String::new();
        };
        let mut out = String::with_capacity(4096);
        t.write_chrome_json(&mut out);
        out
    }

    fn with_trace<R>(&self, default: R, f: impl FnOnce(&TraceData) -> R) -> R {
        match &self.inner {
            Some(rc) => rc.borrow().trace.as_ref().map_or(default, f),
            None => default,
        }
    }

    /// A snapshot of all recorded timeline events, oldest first.
    pub fn events(&self) -> Vec<TimelineEvent> {
        match &self.inner {
            Some(rc) => rc.borrow().timeline.events().to_vec(),
            None => Vec::new(),
        }
    }

    /// The instant of the first event with the given kind, if any.
    pub fn first_event_at(&self, kind: &str) -> Option<u64> {
        match &self.inner {
            Some(rc) => rc.borrow().timeline.first_at(kind),
            None => None,
        }
    }

    /// Measured failure-detection latency in nanoseconds: the span from the
    /// first `tcp.detector.suspected` event to the first subsequent
    /// `mgmt.daemon.promoted` event — the paper's *detect → promote* window.
    pub fn detection_latency_nanos(&self) -> Option<u64> {
        let rc = self.inner.as_ref()?;
        let inner = rc.borrow();
        let detect = inner.timeline.first_at(kinds::DETECTOR_SUSPECTED)?;
        inner
            .timeline
            .events()
            .iter()
            .find(|e| e.kind == kinds::PROMOTED && e.at_nanos >= detect)
            .map(|e| e.at_nanos - detect)
    }

    /// Records one worker-pool run of the parallel experiment engine into
    /// the registry under the [`runner_metrics`] names, so the telemetry
    /// JSON shows engine utilization next to the simulation metrics.
    ///
    /// `events` is the total number of simulated events processed across
    /// all tasks; pass `0` when the workload does not count events and the
    /// `runner.events_per_sec` gauge will read zero.
    pub fn record_runner(
        &self,
        threads: usize,
        tasks_completed: u64,
        worker_busy_nanos: u64,
        wall_nanos: u64,
        events: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.add(runner_metrics::TASKS_COMPLETED, tasks_completed);
        self.add(runner_metrics::WORKER_BUSY_NANOS, worker_busy_nanos);
        self.add(runner_metrics::WALL_NANOS, wall_nanos);
        self.set_gauge(runner_metrics::THREADS, threads as f64);
        let capacity = wall_nanos.saturating_mul(threads as u64);
        let utilization = if capacity == 0 {
            0.0
        } else {
            worker_busy_nanos as f64 / capacity as f64
        };
        self.set_gauge(runner_metrics::UTILIZATION, utilization);
        let events_per_sec = if wall_nanos == 0 {
            0.0
        } else {
            events as f64 * 1e9 / wall_nanos as f64
        };
        self.set_gauge(runner_metrics::EVENTS_PER_SEC, events_per_sec);
    }

    /// Serialises registry + timeline as a JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(&[])
    }

    /// Serialises registry + timeline as JSON, with caller-supplied string
    /// metadata (scenario name, seed, …) in a leading `"meta"` object.
    pub fn to_json_with_meta(&self, meta: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_string(&mut out, k);
            out.push_str(": ");
            json::push_string(&mut out, v);
        }
        out.push_str("},\n");
        match &self.inner {
            Some(rc) => {
                let inner = rc.borrow();
                out.push_str("  \"metrics\": ");
                inner.registry.write_json(&mut out);
                out.push_str(",\n  \"timeline\": ");
                inner.timeline.write_json(&mut out);
            }
            None => {
                out.push_str("  \"metrics\": {\"counters\": {}, \"gauges\": {}, \"histograms\": {}},\n  \"timeline\": []");
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_a_noop() {
        let obs = Obs::disabled();
        obs.add("x", 3);
        obs.record("h", 9);
        obs.event(5, kinds::DETECTOR_SUSPECTED, &[]);
        assert!(!obs.is_enabled());
        assert!(obs.events().is_empty());
        assert_eq!(obs.detection_latency_nanos(), None);
        assert!(obs.to_json().contains("\"timeline\": []"));
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.add("shared.counter", 2);
        obs.add("shared.counter", 1);
        assert!(obs.to_json().contains("\"shared.counter\": 3"));
    }

    #[test]
    fn detection_latency_spans_detect_to_promote() {
        let obs = Obs::enabled();
        obs.event(1_000, kinds::DETECTOR_DUPLICATE, &[]);
        obs.event(2_000, kinds::DETECTOR_SUSPECTED, &[]);
        obs.event(3_000, kinds::HOST_REMOVED, &[]);
        obs.event(7_500, kinds::PROMOTED, &[]);
        assert_eq!(obs.detection_latency_nanos(), Some(5_500));
    }

    #[test]
    fn detection_latency_requires_both_events() {
        let obs = Obs::enabled();
        obs.event(2_000, kinds::DETECTOR_SUSPECTED, &[]);
        assert_eq!(obs.detection_latency_nanos(), None);
        // A promotion *before* the suspicion does not count.
        let obs = Obs::enabled();
        obs.event(1_000, kinds::PROMOTED, &[]);
        obs.event(2_000, kinds::DETECTOR_SUSPECTED, &[]);
        assert_eq!(obs.detection_latency_nanos(), None);
    }

    #[test]
    fn record_runner_publishes_engine_utilization() {
        let obs = Obs::enabled();
        // 4 threads, 10 tasks, workers busy 6s of an 8s-capacity window
        // (2s wall), processing 1_000_000 events.
        obs.record_runner(4, 10, 6_000_000_000, 2_000_000_000, 1_000_000);
        let j = obs.to_json();
        for needle in [
            "\"runner.tasks_completed\": 10",
            "\"runner.worker_busy_nanos\": 6000000000",
            "\"runner.wall_nanos\": 2000000000",
            "\"runner.threads\": 4",
            "\"runner.utilization\": 0.75",
            "\"runner.events_per_sec\": 500000",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        // Counters accumulate across runs; gauges reflect the latest run.
        obs.record_runner(2, 5, 1_000_000_000, 1_000_000_000, 0);
        let j = obs.to_json();
        assert!(j.contains("\"runner.tasks_completed\": 15"), "{j}");
        assert!(j.contains("\"runner.threads\": 2"), "{j}");
        assert!(j.contains("\"runner.utilization\": 0.5"), "{j}");
        assert!(j.contains("\"runner.events_per_sec\": 0"), "{j}");
    }

    #[test]
    fn record_runner_on_disabled_handle_is_noop() {
        let obs = Obs::disabled();
        obs.record_runner(4, 10, 1, 1, 1);
        assert!(obs.to_json().contains("\"counters\": {}"));
    }

    #[test]
    fn spans_are_noops_until_tracing_is_enabled() {
        let obs = Obs::enabled();
        assert!(!obs.tracing_enabled());
        assert_eq!(obs.span_open("conn:x", "conn", "x", None, 5), 0);
        obs.span_note("conn:x", 6, "k", "v".into());
        obs.span_close("conn:x", 7);
        assert_eq!(obs.span_fingerprint(), 0);
        assert_eq!(obs.flight_recorder_json(&[]), "");
        assert_eq!(obs.chrome_trace_json(), "");

        obs.enable_tracing(16);
        assert!(obs.tracing_enabled());
        let id = obs.span_open("conn:x", "conn", "x", None, 5);
        obs.span_note("conn:x", 6, "last_rx_lineage", "0x1".into());
        obs.span_close("conn:x", 7);
        assert_eq!(obs.spans_opened(), 1);
        assert_eq!(id, 0, "first span id");
        let dump = obs.flight_recorder_json(&[("scenario", "t".into())]);
        assert!(dump.contains("last_rx_lineage"), "{dump}");
        assert_ne!(obs.span_fingerprint(), 0);
    }

    #[test]
    fn tracing_flag_is_shared_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        obs.enable_tracing(8);
        assert!(clone.tracing_enabled());
        clone.span_open("k", "conn", "k", None, 1);
        assert_eq!(obs.spans_opened(), 1);
    }

    #[test]
    fn flight_recorder_evicts_at_capacity() {
        let obs = Obs::enabled();
        obs.enable_tracing(3);
        for i in 0..5u64 {
            obs.span_open(&format!("s{i}"), "conn", &format!("s{i}"), None, i);
            obs.span_close(&format!("s{i}"), i + 1);
        }
        assert_eq!(obs.trace_evicted(), 2);
        let dump = obs.flight_recorder_json(&[]);
        assert!(dump.contains("\"evicted\": 2"), "{dump}");
        assert!(!dump.contains("\"s0\""), "oldest span must be gone: {dump}");
        assert!(dump.contains("\"s4\""), "newest span must survive: {dump}");
    }

    #[test]
    fn timeline_events_drive_failover_spans_when_tracing() {
        let obs = Obs::enabled();
        obs.enable_tracing(32);
        obs.event(100, kinds::NODE_CRASHED, &[("node", "n2".into())]);
        obs.event(200, kinds::DETECTOR_SUSPECTED, &[]);
        obs.event(250, kinds::FAILURE_REPORTED, &[]);
        obs.event(300, kinds::PROMOTED, &[]);
        obs.event(400, kinds::CHAIN_RECONFIGURED, &[]);
        let dump = obs.flight_recorder_json(&[]);
        for needle in [
            "detect",
            "report",
            "promote",
            "reconverge",
            "crash→reconverge",
        ] {
            assert!(dump.contains(needle), "missing {needle} in {dump}");
        }
        // The timeline itself is unaffected.
        assert_eq!(obs.events().len(), 5);
    }

    #[test]
    fn json_has_all_sections() {
        let obs = Obs::enabled();
        obs.add("a.b.count", 1);
        obs.set_gauge("a.b.level", 0.5);
        obs.record("a.b.lat_us", 100);
        obs.event(9, kinds::PROMOTED, &[("host", "10.0.2.1".into())]);
        let j = obs.to_json_with_meta(&[("scenario", "test".into())]);
        for needle in [
            "\"meta\"",
            "\"scenario\": \"test\"",
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"timeline\"",
            "\"a.b.count\": 1",
            "mgmt.daemon.promoted",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
