//! Named counters, gauges, and fixed-bucket histograms.
//!
//! The registry hands out `Rc`-backed handles: a component looks its
//! metrics up **once** at wiring time and then increments through the
//! handle, so the event-loop hot path never pays for a name lookup. A
//! default-constructed handle (from a disabled [`crate::Obs`]) is a no-op.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json;

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.set(c.get().wrapping_add(delta));
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Rc<Cell<f64>>>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, value: f64) {
        if let Some(c) = &self.0 {
            c.set(value);
        }
    }

    /// The current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.get())
    }
}

/// Upper bucket bounds shared by all histograms: powers of two from 1 to
/// 2^39 (~9.2 simulated minutes in nanoseconds), plus an implicit overflow
/// bucket. Power-of-two bounds give ≤ 2× relative quantile error across
/// the whole range, which is plenty for latency distributions, and make
/// bucket selection a comparison scan over 40 entries.
pub const BUCKET_BOUNDS: usize = 40;

fn bound(i: usize) -> u64 {
    1u64 << i
}

/// The index of the bucket `value` falls into (the overflow bucket is
/// `BUCKET_BOUNDS`).
fn bucket_index(value: u64) -> usize {
    for i in 0..BUCKET_BOUNDS {
        if value <= bound(i) {
            return i;
        }
    }
    BUCKET_BOUNDS
}

#[derive(Debug)]
pub(crate) struct HistData {
    counts: [u64; BUCKET_BOUNDS + 1],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            counts: [0; BUCKET_BOUNDS + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistData {
    fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if below + c >= target {
                // Linear interpolation inside the bucket, between its lower
                // bound and its upper bound. Bounds are tightened to the
                // observed extremes, which also fixes the discontinuity at
                // the top power-of-two boundary: a quantile landing in the
                // overflow bucket interpolates from 2^39 toward the
                // observed max instead of jumping straight to it.
                let upper = if i < BUCKET_BOUNDS {
                    bound(i).min(self.max)
                } else {
                    self.max
                };
                let lower_bound = if i == 0 { 0 } else { bound(i - 1) };
                let lower = lower_bound.max(self.min).min(upper);
                let pos = target - below; // 1..=c, so pos == c hits `upper`
                let width = upper - lower;
                return lower + ((u128::from(width) * u128::from(pos)) / u128::from(c)) as u64;
            }
            below += c;
        }
        self.max
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\": ");
        json::push_u64(out, self.count);
        out.push_str(", \"min\": ");
        json::push_u64(out, if self.count == 0 { 0 } else { self.min });
        out.push_str(", \"max\": ");
        json::push_u64(out, self.max);
        out.push_str(", \"mean\": ");
        json::push_f64(
            out,
            if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
        );
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
            out.push_str(", \"");
            out.push_str(label);
            out.push_str("\": ");
            json::push_u64(out, self.quantile(q));
        }
        // Only non-empty buckets, as [upper_bound, count] pairs; the
        // overflow bucket exports with upper bound 0 (meaning "above all").
        out.push_str(", \"buckets\": [");
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push('[');
            json::push_u64(out, if i < BUCKET_BOUNDS { bound(i) } else { 0 });
            out.push_str(", ");
            json::push_u64(out, c);
            out.push(']');
        }
        out.push_str("]}");
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Rc<RefCell<HistData>>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.borrow_mut().record(value);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.borrow().count)
    }

    /// The largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.borrow().max)
    }

    /// The smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| {
            let h = h.borrow();
            if h.count == 0 {
                0
            } else {
                h.min
            }
        })
    }

    /// The mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |h| {
            let h = h.borrow();
            if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            }
        })
    }

    /// An estimate of the `q`-quantile: linearly interpolated inside the
    /// power-of-two bucket the quantile falls in, with the bucket bounds
    /// tightened to the observed min/max (so a single-value histogram
    /// reports that value at every quantile, and the overflow bucket
    /// interpolates from `2^39` toward the observed maximum instead of
    /// jumping straight to it).
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.as_ref().map_or(0, |h| h.borrow().quantile(q))
    }
}

/// The metric store behind an [`crate::Obs`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, Rc<Cell<f64>>>,
    histograms: BTreeMap<String, Rc<RefCell<HistData>>>,
}

impl Registry {
    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&mut self, name: &str) -> Counter {
        let cell = self
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(Cell::new(0)));
        Counter(Some(cell.clone()))
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        let cell = self
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(Cell::new(0.0)));
        Gauge(Some(cell.clone()))
    }

    /// Returns (creating if needed) the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        let data = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Rc::new(RefCell::new(HistData::default())));
        Histogram(Some(data.clone()))
    }

    /// Serialises the registry as a JSON object with `counters`, `gauges`,
    /// and `histograms` sub-objects (names sorted, so output is stable).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"counters\": {");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_string(out, name);
            out.push_str(": ");
            json::push_u64(out, c.get());
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_string(out, name);
            out.push_str(": ");
            json::push_f64(out, g.get());
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::push_string(out, name);
            out.push_str(": ");
            h.borrow().write_json(out);
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_do_nothing() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn counter_handles_share_the_slot() {
        let mut r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn bucket_index_is_power_of_two_ceiling() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 39), 39);
        assert_eq!(bucket_index((1 << 39) + 1), BUCKET_BOUNDS);
        assert_eq!(bucket_index(u64::MAX), BUCKET_BOUNDS);
    }

    #[test]
    fn histogram_bucket_math() {
        let mut r = Registry::default();
        let h = r.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Buckets: ≤1:1, ≤2:1, ≤4:2, ≤8:4, ≤16:8, ≤32:16, ≤64:32, ≤128:36.
        // With in-bucket interpolation the uniform 1..=100 stream recovers
        // its quantiles exactly: p50 target = 50 → (32, 64] bucket at
        // position 18/32 → 32 + 32·18/32 = 50.
        assert_eq!(h.quantile(0.50), 50);
        // p90 target = 90 → (64, min(128, max)=100] at position 26/36.
        assert_eq!(h.quantile(0.90), 90);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(0.999), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn histogram_single_value() {
        let mut r = Registry::default();
        let h = r.histogram("one");
        h.record(7);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.99), 7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let mut r = Registry::default();
        let h = r.histogram("big");
        h.record(u64::MAX / 2);
        assert_eq!(h.quantile(0.5), u64::MAX / 2);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let mut r = Registry::default();
        let h = r.histogram("empty");
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_json_is_sorted_and_complete() {
        let mut r = Registry::default();
        r.counter("b.count").inc();
        r.counter("a.count").add(2);
        r.gauge("z.level").set(1.25);
        r.histogram("m.lat").record(3);
        let mut out = String::new();
        r.write_json(&mut out);
        let a = out.find("a.count").unwrap();
        let b = out.find("b.count").unwrap();
        assert!(a < b, "names must sort: {out}");
        assert!(out.contains("\"z.level\": 1.25"));
        assert!(out.contains("\"p999\": 3"), "{out}");
        assert!(out.contains("\"buckets\": [[4, 1]]"), "{out}");
    }
}
