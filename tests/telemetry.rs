//! Acceptance test for the unified telemetry layer: a fail-over scenario
//! run through `hydranet-core` must export a JSON report carrying
//! per-connection RTO/cwnd histograms, the detector's duplicate-count
//! trajectory, and a timeline whose `detect -> promote` span yields a
//! measured detection latency.

use hydranet::obs::kinds;
use hydranet::prelude::*;

const CLIENT: IpAddr = IpAddr::new(10, 0, 1, 1);
const RD: IpAddr = IpAddr::new(10, 9, 0, 1);
const HS1: IpAddr = IpAddr::new(10, 0, 2, 1);
const HS2: IpAddr = IpAddr::new(10, 0, 3, 1);
const SERVICE_ADDR: IpAddr = IpAddr::new(192, 20, 225, 20);

fn service() -> SockAddr {
    SockAddr::new(SERVICE_ADDR, 80)
}

/// Client — redirector — two replicated echo servers; the primary is
/// crashed mid-transfer so the full fail-over narrative lands on the
/// timeline.
fn run_failover_scenario() -> System {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("client", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let hs1 = b.add_host_server("hs1", HS1, RD);
    let hs2 = b.add_host_server("hs2", HS2, RD);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    let sink1 = shared(SinkState::default());
    let sink2 = shared(SinkState::default());
    for (i, (&replica, sink)) in [(hs1, sink1), (hs2, sink2)]
        .iter()
        .map(|(r, s)| (r, s.clone()))
        .enumerate()
    {
        let mut spec = FtServiceSpec::new(service(), vec![replica], detector);
        spec.registration_start = spec
            .registration_start
            .saturating_add(spec.registration_stagger * i as u64);
        b.deploy_ft_service(&spec, move |_q| Box::new(EchoApp::new(sink.clone())));
    }
    let mut system = b.build(11);
    assert!(system.wait_for_chain(rd, service(), 2, SimTime::from_secs(2)));

    let state = shared(SenderState::default());
    let payload: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
    let app = StreamSenderApp::new(payload, false, state);
    system.connect_client(client, service(), Box::new(app));
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    system.sim.schedule_crash(hs1, crash_at);
    system.sim.run_until(SimTime::from_secs(60));
    system
}

#[test]
fn failover_run_exports_full_telemetry_report() {
    let system = run_failover_scenario();
    let obs = system.obs();

    // The detect -> promote span is measurable from the timeline.
    let detect = obs
        .first_event_at(kinds::DETECTOR_SUSPECTED)
        .expect("detector fired");
    let latency = system
        .detection_latency_nanos()
        .expect("promotion observed after detection");
    assert!(latency > 0, "promotion cannot be instantaneous");
    let promote = obs
        .first_event_at(kinds::PROMOTED)
        .expect("promotion recorded");
    assert_eq!(promote - detect, latency);

    // The duplicate-count trajectory: each observation carries a running
    // total that must be strictly increasing up to the threshold.
    let dups: Vec<u64> = obs
        .events()
        .iter()
        .filter(|e| e.kind == kinds::DETECTOR_DUPLICATE)
        .map(|e| e.field("total").expect("total field").parse().unwrap())
        .collect();
    assert!(dups.len() >= 4, "threshold-4 detector saw {dups:?}");
    assert!(dups.windows(2).all(|w| w[1] > w[0]), "trajectory {dups:?}");

    // The reconfiguration steps all made it onto the timeline, in causal
    // order.
    for kind in [
        kinds::NODE_CRASHED,
        kinds::FAILURE_REPORTED,
        kinds::PROBE_STARTED,
        kinds::HOST_REMOVED,
        kinds::CHAIN_RECONFIGURED,
        kinds::TABLE_INSTALLED,
    ] {
        let at = obs
            .first_event_at(kind)
            .unwrap_or_else(|| panic!("missing {kind}"));
        assert!(at <= promote, "{kind} after promotion");
    }

    // The JSON report carries per-connection RTO and cwnd histograms with
    // real observations, plus the timeline.
    let report = system.telemetry_json("telemetry-acceptance");
    assert!(report.contains("\"scenario\": \"telemetry-acceptance\""));
    let rto = report.match_indices(".rto_us\"").count();
    let cwnd = report.match_indices(".cwnd\"").count();
    assert!(
        rto >= 2,
        "expected client+server rto histograms, found {rto}"
    );
    assert!(
        cwnd >= 2,
        "expected client+server cwnd histograms, found {cwnd}"
    );
    assert!(report.contains("tcp.detector.suspected"));
    assert!(report.contains("mgmt.daemon.promoted"));

    // Histogram handles back the JSON: the client connection recorded
    // nonzero RTO samples.
    let h = obs.histogram(&format!(
        "tcp.conn.{}:40000 <-> {}.rto_us",
        CLIENT,
        service()
    ));
    assert!(h.count() > 0, "client rto histogram empty");
    assert!(h.min() > 0, "rto of zero recorded");
}

#[test]
fn healthy_run_records_no_failover_events() {
    let mut b = SystemBuilder::new(TcpConfig::default());
    let client = b.add_client("client", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let hs1 = b.add_host_server("hs1", HS1, RD);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    let sink = shared(SinkState::default());
    let spec = FtServiceSpec::new(
        service(),
        vec![hs1],
        DetectorParams::new(4, SimDuration::from_secs(30)),
    );
    let app_sink = sink.clone();
    b.deploy_ft_service(&spec, move |_q| Box::new(EchoApp::new(app_sink.clone())));
    let mut system = b.build(13);
    assert!(system.wait_for_chain(rd, service(), 1, SimTime::from_secs(2)));
    let state = shared(SenderState::default());
    let app = StreamSenderApp::new(vec![7u8; 20_000], false, state);
    system.connect_client(client, service(), Box::new(app));
    system.sim.run_until(SimTime::from_secs(10));

    assert_eq!(sink.borrow().len(), 20_000);
    let obs = system.obs();
    assert!(system.detection_latency_nanos().is_none());
    for kind in [
        kinds::DETECTOR_SUSPECTED,
        kinds::FAILURE_REPORTED,
        kinds::PROMOTED,
        kinds::HOST_REMOVED,
    ] {
        assert!(obs.first_event_at(kind).is_none(), "spurious {kind}");
    }
    // But steady-state metrics still flowed.
    let report = system.telemetry_json("healthy");
    assert!(report.contains(".srtt_us\""));
    assert!(report.contains("redirect.engine."));
}
