//! The Figure 1 deployment: two ISPs, each with its own redirector, one
//! replicated service reachable through either. Clients in both ISPs hold
//! connections through a primary failure; both redirectors converge on the
//! same reconfigured chain.

use hydranet::prelude::*;

const CLIENT_SW: IpAddr = IpAddr::new(10, 1, 0, 1); // southwest.net client
const CLIENT_NE: IpAddr = IpAddr::new(10, 2, 0, 1); // northeast.net client
const RD_SW: IpAddr = IpAddr::new(10, 1, 9, 1);
const RD_NE: IpAddr = IpAddr::new(10, 2, 9, 1);
const HS1: IpAddr = IpAddr::new(10, 3, 0, 1);
const HS2: IpAddr = IpAddr::new(10, 3, 0, 2);
const SERVICE_ADDR: IpAddr = IpAddr::new(192, 20, 225, 20);

fn service() -> SockAddr {
    SockAddr::new(SERVICE_ADDR, 80)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

struct Net {
    system: System,
    client_sw: NodeId,
    client_ne: NodeId,
    rd_sw: NodeId,
    rd_ne: NodeId,
    hs1: NodeId,
}

/// Topology:
/// client_sw — rd_sw —+— hs1
///                    ×
/// client_ne — rd_ne —+— hs2
/// (both redirectors link to both host servers and to each other's clients'
/// paths via a backbone link between them)
fn build(seed: u64) -> Net {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client_sw = b.add_client("client_sw", CLIENT_SW);
    let client_ne = b.add_client("client_ne", CLIENT_NE);
    let rd_sw = b.add_redirector("rd_sw", RD_SW);
    let rd_ne = b.add_redirector("rd_ne", RD_NE);
    let hs1 = b.add_host_server_multi("hs1", HS1, vec![RD_SW, RD_NE]);
    let hs2 = b.add_host_server_multi("hs2", HS2, vec![RD_SW, RD_NE]);
    b.link(client_sw, rd_sw, LinkParams::default());
    b.link(client_ne, rd_ne, LinkParams::default());
    // Backbone between the ISPs.
    b.link(
        rd_sw,
        rd_ne,
        LinkParams::new(100_000_000, SimDuration::from_millis(2)),
    );
    // Each redirector reaches each host server directly.
    b.link(rd_sw, hs1, LinkParams::default());
    b.link(rd_ne, hs2, LinkParams::default());
    // hs1 hangs off rd_sw; hs2 off rd_ne. Cross traffic rides the backbone
    // (auto-routing computes shortest paths).

    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    for (i, &hs) in [hs1, hs2].iter().enumerate() {
        let mut spec = FtServiceSpec::new(service(), vec![hs], detector);
        spec.registration_start = SimTime::from_millis(1 + 30 * i as u64);
        b.deploy_ft_service(&spec, move |_q| {
            Box::new(EchoApp::new(shared(SinkState::default())))
        });
    }
    let mut system = b.build(seed);
    assert!(system.wait_for_chain(rd_sw, service(), 2, SimTime::from_secs(3)));
    assert!(system.wait_for_chain(rd_ne, service(), 2, SimTime::from_secs(3)));
    Net {
        system,
        client_sw,
        client_ne,
        rd_sw,
        rd_ne,
        hs1,
    }
}

#[test]
fn both_redirectors_learn_the_same_chain() {
    let net = build(1);
    let chain_sw = net
        .system
        .redirector(net.rd_sw)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    let chain_ne = net
        .system
        .redirector(net.rd_ne)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(chain_sw, chain_ne);
    assert_eq!(chain_sw, vec![HS1, HS2]);
}

#[test]
fn clients_of_both_isps_are_served() {
    let mut net = build(2);
    let (pa, pb) = (pattern(60_000), pattern(80_000));
    let ra = shared(SenderState::default());
    let rb = shared(SenderState::default());
    net.system.connect_client(
        net.client_sw,
        service(),
        Box::new(StreamSenderApp::new(pa.clone(), false, ra.clone())),
    );
    net.system.connect_client(
        net.client_ne,
        service(),
        Box::new(StreamSenderApp::new(pb.clone(), false, rb.clone())),
    );
    net.system.sim.run_until(SimTime::from_secs(30));
    assert_eq!(ra.borrow().replies.data, pa, "southwest client stream");
    assert_eq!(rb.borrow().replies.data, pb, "northeast client stream");
}

#[test]
fn failover_converges_on_both_redirectors() {
    let mut net = build(3);
    let (pa, pb) = (pattern(400_000), pattern(400_000));
    let ra = shared(SenderState::default());
    let rb = shared(SenderState::default());
    net.system.connect_client(
        net.client_sw,
        service(),
        Box::new(StreamSenderApp::new(pa.clone(), false, ra.clone())),
    );
    net.system.connect_client(
        net.client_ne,
        service(),
        Box::new(StreamSenderApp::new(pb.clone(), false, rb.clone())),
    );
    let crash_at = net
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(80));
    net.system.sim.schedule_crash(net.hs1, crash_at);
    let deadline = SimTime::from_secs(240);
    let mut step = net.system.sim.now();
    while net.system.sim.now() < deadline {
        if ra.borrow().replies.data.len() >= pa.len() && rb.borrow().replies.data.len() >= pb.len()
        {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(50));
        net.system.sim.run_until(step);
    }
    assert_eq!(
        ra.borrow().replies.data,
        pa,
        "southwest stream across fail-over"
    );
    assert_eq!(
        rb.borrow().replies.data,
        pb,
        "northeast stream across fail-over"
    );
    for rd in [net.rd_sw, net.rd_ne] {
        assert_eq!(
            net.system
                .redirector(rd)
                .controller()
                .chain(service())
                .unwrap(),
            &[HS2],
            "redirector {rd:?} did not converge"
        );
    }
}
