//! Whole-system integration tests: deployment through the management
//! protocol, automatic fail-over, reconfiguration, and client transparency.

use hydranet::prelude::*;

const CLIENT: IpAddr = IpAddr::new(10, 0, 1, 1);
const RD: IpAddr = IpAddr::new(10, 9, 0, 1);
const HS1: IpAddr = IpAddr::new(10, 0, 2, 1);
const HS2: IpAddr = IpAddr::new(10, 0, 3, 1);
const HS3: IpAddr = IpAddr::new(10, 0, 4, 1);
const SERVICE_ADDR: IpAddr = IpAddr::new(192, 20, 225, 20);

fn service() -> SockAddr {
    SockAddr::new(SERVICE_ADDR, 80)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

struct Deployment {
    system: System,
    client: NodeId,
    rd: NodeId,
    replicas: Vec<NodeId>,
    sinks: Vec<Shared<SinkState>>,
}

/// Builds a star: client — redirector — N host servers, echo service
/// replicated on all of them, fast detector for short tests.
fn deploy(n: usize, echo: bool, seed: u64) -> Deployment {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("client", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let addrs = [HS1, HS2, HS3];
    let mut replicas = Vec::new();
    for (i, addr) in addrs.iter().take(n).enumerate() {
        replicas.push(b.add_host_server(&format!("hs{}", i + 1), *addr, RD));
    }
    b.link(client, rd, LinkParams::default());
    for &r in &replicas {
        b.link(rd, r, LinkParams::default());
    }
    // One sink per replica, matched by connection order: each accepted
    // connection on replica i records into sinks[i].
    let sinks: Vec<Shared<SinkState>> = (0..n).map(|_| shared(SinkState::default())).collect();
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    let spec = FtServiceSpec::new(service(), replicas.clone(), detector);
    for (i, &replica) in replicas.iter().enumerate() {
        // Deploy per-replica so each replica gets its own sink handle.
        let sink = sinks[i].clone();
        let one = FtServiceSpec {
            chain: vec![replica],
            ..spec.clone()
        };
        let mut one = one;
        one.registration_start = spec
            .registration_start
            .saturating_add(spec.registration_stagger * i as u64);
        b.deploy_ft_service(&one, move |_quad| {
            if echo {
                Box::new(EchoApp::new(sink.clone()))
            } else {
                Box::new(EchoApp::sink(sink.clone()))
            }
        });
    }
    let system = b.build(seed);
    Deployment {
        system,
        client,
        rd,
        replicas,
        sinks,
    }
}

fn start_sender(d: &mut Deployment, payload: Vec<u8>) -> Shared<SenderState> {
    let state = shared(SenderState::default());
    let app = StreamSenderApp::new(payload, false, state.clone());
    d.system.connect_client(d.client, service(), Box::new(app));
    state
}

#[test]
fn registration_forms_chain_in_stagger_order() {
    let mut d = deploy(3, false, 1);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 3, SimTime::from_secs(2)));
    let chain = d
        .system
        .redirector(d.rd)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(chain, vec![HS1, HS2, HS3]);
    // The redirector table matches the controller's view.
    let table_chain = d
        .system
        .redirector(d.rd)
        .engine()
        .table()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(table_chain, chain);
}

#[test]
fn replicated_echo_end_to_end() {
    let mut d = deploy(2, true, 2);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
    let payload = pattern(25_000);
    let state = start_sender(&mut d, payload.clone());
    d.system.sim.run_until(SimTime::from_secs(20));
    assert_eq!(d.sinks[0].borrow().data, payload, "primary stream");
    assert_eq!(d.sinks[1].borrow().data, payload, "backup stream");
    assert_eq!(state.borrow().replies.data, payload, "client echo");
}

#[test]
fn automatic_failover_on_primary_crash_is_client_transparent() {
    let mut d = deploy(2, true, 3);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
    let payload = pattern(400_000);
    let state = start_sender(&mut d, payload.clone());
    // Crash the primary mid-transfer.
    let crash_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    d.system.sim.schedule_crash(d.replicas[0], crash_at);
    // Run: detector -> FailureReport -> probes -> reconfiguration ->
    // SetRole(promote) all happen inside the system, no hand-holding.
    let deadline = SimTime::from_secs(180);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline && state.borrow().replies.data.len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
    }
    assert_eq!(
        state.borrow().replies.data.len(),
        payload.len(),
        "echo incomplete after automatic fail-over"
    );
    assert_eq!(state.borrow().replies.data, payload, "stream corrupted");
    assert!(!state.borrow().replies.reset, "client saw a reset");
    // The chain reconfigured down to the surviving backup.
    let chain = d
        .system
        .redirector(d.rd)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(chain, vec![HS2]);
    assert!(d.system.redirector(d.rd).controller().reconfigurations() >= 1);
}

#[test]
fn automatic_reconfiguration_on_backup_crash() {
    let mut d = deploy(2, false, 4);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
    let payload = pattern(300_000);
    let _state = start_sender(&mut d, payload.clone());
    let crash_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    d.system.sim.schedule_crash(d.replicas[1], crash_at);
    let deadline = SimTime::from_secs(180);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline && d.sinks[0].borrow().len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
    }
    assert_eq!(d.sinks[0].borrow().data, payload, "service did not resume");
    let chain = d
        .system
        .redirector(d.rd)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(chain, vec![HS1]);
}

#[test]
fn middle_backup_crash_rechains_three_replicas() {
    let mut d = deploy(3, false, 5);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 3, SimTime::from_secs(2)));
    let payload = pattern(300_000);
    let _state = start_sender(&mut d, payload.clone());
    let crash_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    d.system.sim.schedule_crash(d.replicas[1], crash_at);
    let deadline = SimTime::from_secs(180);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline
        && (d.sinks[0].borrow().len() < payload.len() || d.sinks[2].borrow().len() < payload.len())
    {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
    }
    assert_eq!(d.sinks[0].borrow().data, payload, "primary stream");
    assert_eq!(d.sinks[2].borrow().data, payload, "tail backup stream");
    let chain = d
        .system
        .redirector(d.rd)
        .controller()
        .chain(service())
        .unwrap()
        .to_vec();
    assert_eq!(chain, vec![HS1, HS3]);
}

#[test]
fn recovered_host_can_rejoin_as_backup() {
    let mut d = deploy(2, false, 6);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
    // Kill the backup mid-transfer and let the system reconfigure down to
    // one (detection needs traffic: an idle chain has no flow-control loop
    // to observe breaking).
    let payload = pattern(600_000);
    let _ = start_sender(&mut d, payload);
    let crash_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(100));
    d.system.sim.schedule_crash(d.replicas[1], crash_at);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < SimTime::from_secs(120) {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
        let len = d
            .system
            .redirector(d.rd)
            .controller()
            .chain(service())
            .map_or(0, |c| c.len());
        if len == 1 {
            break;
        }
    }
    assert_eq!(
        d.system
            .redirector(d.rd)
            .controller()
            .chain(service())
            .unwrap(),
        &[HS1]
    );
    // Recover the host: its restarted daemon re-registers automatically
    // and the redirector appends it to the chain as a backup.
    let now = d.system.sim.now();
    let rejoin_at = now.saturating_add(SimDuration::from_millis(10));
    d.system.sim.schedule_recover(d.replicas[1], rejoin_at);
    assert!(d.system.wait_for_chain(
        d.rd,
        service(),
        2,
        rejoin_at.saturating_add(SimDuration::from_secs(5))
    ));
    assert_eq!(
        d.system
            .redirector(d.rd)
            .controller()
            .chain(service())
            .unwrap(),
        &[HS1, HS2]
    );
}

#[test]
fn request_reply_service_survives_failover() {
    // A session-style workload: 50 request/response exchanges across a
    // primary crash. The client is a plain TCP client throughout.
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("client", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let hs1 = b.add_host_server("hs1", HS1, RD);
    let hs2 = b.add_host_server("hs2", HS2, RD);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());
    let served = shared(0u64);
    let spec = FtServiceSpec::new(
        service(),
        vec![hs1, hs2],
        DetectorParams::new(4, SimDuration::from_secs(30)),
    );
    let served_handle = served.clone();
    b.deploy_ft_service(&spec, move |_q| {
        Box::new(LineReplyApp::new(4_000, served_handle.clone()))
    });
    let mut system = b.build(7);
    assert!(system.wait_for_chain(rd, service(), 2, SimTime::from_secs(2)));

    let state = shared(RequestLoopState::default());
    let app = RequestLoopApp::new(50, state.clone());
    system.connect_client(client, service(), Box::new(app));
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(100));
    system.sim.schedule_crash(hs1, crash_at);
    let mut step = system.sim.now();
    while system.sim.now() < SimTime::from_secs(180) && state.borrow().completed < 50 {
        step = step.saturating_add(SimDuration::from_millis(50));
        system.sim.run_until(step);
    }
    assert_eq!(state.borrow().completed, 50, "exchanges incomplete");
    assert!(!state.borrow().reset, "client connection was reset");
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let mut d = deploy(2, true, seed);
        assert!(d
            .system
            .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
        let state = start_sender(&mut d, pattern(50_000));
        let crash_at = d
            .system
            .sim
            .now()
            .saturating_add(SimDuration::from_millis(40));
        d.system.sim.schedule_crash(d.replicas[0], crash_at);
        d.system.sim.run_until(SimTime::from_secs(30));
        let received = state.borrow().replies.data.len();
        (received, d.system.sim.stats().events_processed)
    };
    assert_eq!(run(99), run(99), "same seed must replay identically");
}

#[test]
fn two_successive_failures_on_one_connection() {
    // Regression: the failure estimator's latch must reset after each
    // reconfiguration, or a second failure on the same long-lived
    // connection goes unreported and the service stalls forever.
    let mut d = deploy(3, true, 8);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 3, SimTime::from_secs(2)));
    let payload = pattern(1_200_000);
    let state = start_sender(&mut d, payload.clone());
    // First failure: the primary.
    let crash1 = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(50));
    d.system.sim.schedule_crash(d.replicas[0], crash1);
    // Second failure: the promoted replica, once the first reconfiguration
    // has happened and traffic resumed.
    let deadline = SimTime::from_secs(600);
    let mut second_crash_done = false;
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline && state.borrow().replies.data.len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
        if !second_crash_done
            && d.system.redirector(d.rd).controller().reconfigurations() >= 1
            && !state.borrow().replies.data.is_empty()
        {
            let at = d
                .system
                .sim
                .now()
                .saturating_add(SimDuration::from_millis(100));
            d.system.sim.schedule_crash(d.replicas[1], at);
            second_crash_done = true;
        }
    }
    assert!(second_crash_done, "second crash never scheduled");
    assert_eq!(
        state.borrow().replies.data.len(),
        payload.len(),
        "stream stalled after the second failure (detector latch not reset?)"
    );
    assert_eq!(state.borrow().replies.data, payload);
    assert_eq!(
        d.system
            .redirector(d.rd)
            .controller()
            .chain(service())
            .unwrap(),
        &[HS3],
        "chain should have shed both failed replicas"
    );
}

#[test]
fn link_outage_and_restore_keeps_stream_correct() {
    // A transient network outage (not a crash) on the client's link: TCP
    // rides it out; the chain must not be reconfigured spuriously once the
    // link returns and traffic resumes (the paper's congestion scenario).
    let mut d = deploy(2, true, 9);
    assert!(d
        .system
        .wait_for_chain(d.rd, service(), 2, SimTime::from_secs(2)));
    let payload = pattern(300_000);
    let state = start_sender(&mut d, payload.clone());
    // The client link is link 0 (first created in deploy()).
    let client_link = hydranet::netsim::link::LinkId::from_index(0);
    let down_at = d
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(60));
    d.system.sim.schedule_link_down(client_link, down_at);
    d.system.sim.schedule_link_up(
        client_link,
        down_at.saturating_add(SimDuration::from_millis(700)),
    );
    let deadline = SimTime::from_secs(240);
    let mut step = d.system.sim.now();
    while d.system.sim.now() < deadline && state.borrow().replies.data.len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(50));
        d.system.sim.run_until(step);
    }
    assert_eq!(
        state.borrow().replies.data,
        payload,
        "stream broken by outage"
    );
    assert!(!state.borrow().replies.reset);
}
