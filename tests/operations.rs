//! Operational scenarios from the paper's §4.4 and §1: graceful replica
//! departure, congestion-induced shutdown and re-commissioning, and
//! multi-service / multi-client deployments.

use hydranet::core::host::HostServer;
use hydranet::netsim::link::LinkId;
use hydranet::prelude::*;

const CLIENT: IpAddr = IpAddr::new(10, 0, 1, 1);
const CLIENT2: IpAddr = IpAddr::new(10, 0, 1, 2);
const RD: IpAddr = IpAddr::new(10, 9, 0, 1);
const HS1: IpAddr = IpAddr::new(10, 0, 2, 1);
const HS2: IpAddr = IpAddr::new(10, 0, 3, 1);
const SERVICE_ADDR: IpAddr = IpAddr::new(192, 20, 225, 20);

fn service(port: u16) -> SockAddr {
    SockAddr::new(SERVICE_ADDR, port)
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

struct Rig {
    system: System,
    client: NodeId,
    client2: NodeId,
    rd: NodeId,
    hs1: NodeId,
    hs2: NodeId,
}

fn build(echo: bool, seed: u64) -> Rig {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("c1", CLIENT);
    let client2 = b.add_client("c2", CLIENT2);
    let rd = b.add_redirector("rd", RD);
    let hs1 = b.add_host_server("hs1", HS1, RD);
    let hs2 = b.add_host_server("hs2", HS2, RD);
    b.link(client, rd, LinkParams::default());
    b.link(client2, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());
    // Per-replica sinks exist only to give the service deterministic apps;
    // assertions use per-connection reply streams.
    let sinks: Vec<Shared<SinkState>> = (0..2).map(|_| shared(SinkState::default())).collect();
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    for (i, &hs) in [hs1, hs2].iter().enumerate() {
        let sink = sinks[i].clone();
        let mut spec = FtServiceSpec::new(service(80), vec![hs], detector);
        spec.registration_start = SimTime::from_millis(1 + 20 * i as u64);
        b.deploy_ft_service(&spec, move |_q| {
            if echo {
                Box::new(EchoApp::new(sink.clone()))
            } else {
                Box::new(EchoApp::sink(sink.clone()))
            }
        });
    }
    let mut system = b.build(seed);
    assert!(system.wait_for_chain(rd, service(80), 2, SimTime::from_secs(2)));
    Rig {
        system,
        client,
        client2,
        rd,
        hs1,
        hs2,
    }
}

#[test]
fn graceful_primary_departure_promotes_backup() {
    // §4.4 "Deletion of primary server": a voluntary leave needs no failure
    // detection at all — the redirector immediately promotes the next
    // backup, so the disruption is far smaller than a crash.
    let mut rig = build(true, 1);
    let payload = pattern(400_000);
    let replies = shared(SenderState::default());
    rig.system.connect_client(
        rig.client,
        service(80),
        Box::new(StreamSenderApp::new(
            payload.clone(),
            false,
            replies.clone(),
        )),
    );
    rig.system.sim.run_for(SimDuration::from_millis(50));
    // The primary announces its departure, then (a moment later, having
    // flushed) goes down for maintenance.
    let hs1 = rig.hs1;
    rig.system
        .sim
        .with_node_ctx::<HostServer, _>(hs1, |host, ctx| {
            host.deregister(ctx, service(80));
        });
    let leave_at = rig
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(200));
    rig.system.sim.schedule_crash(rig.hs1, leave_at);

    let deadline = SimTime::from_secs(60);
    let mut step = rig.system.sim.now();
    while rig.system.sim.now() < deadline && replies.borrow().replies.data.len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(20));
        rig.system.sim.run_until(step);
    }
    let st = replies.borrow();
    assert_eq!(st.replies.data, payload, "stream broken by graceful leave");
    assert!(!st.replies.reset);
    // Graceful departure must be far less disruptive than crash fail-over:
    // no detection delay, no probe round.
    let stall = st.replies.max_gap_duration().expect("gap measured");
    assert!(
        stall < SimDuration::from_millis(600),
        "graceful leave stalled {stall} — should not need failure detection"
    );
    assert_eq!(
        rig.system
            .redirector(rig.rd)
            .controller()
            .chain(service(80))
            .unwrap(),
        &[HS2]
    );
}

#[test]
fn congested_backup_is_shed_then_recommissioned() {
    // §1: "it should be possible to temporarily shut down servers when they
    // cause service disruption due to congestion, and bring them back in
    // when the congestion clears."
    let mut rig = build(true, 2);
    let backup_link = LinkId::from_index(3); // rd <-> hs2 (4th link built)
    let payload = pattern(900_000);
    let sender = shared(SenderState::default());
    rig.system.connect_client(
        rig.client,
        service(80),
        Box::new(StreamSenderApp::new(payload.clone(), false, sender.clone())),
    );
    rig.system.sim.run_for(SimDuration::from_millis(40));
    // Severe congestion on the backup's branch: effectively unusable.
    rig.system
        .sim
        .set_link_loss(backup_link, LossModel::Bernoulli { p: 0.9 });

    // The broken chain stalls the primary; the estimator fires; the
    // redirector probes. The congested backup often cannot answer probes
    // through 90% loss either, so it is shed.
    let deadline = SimTime::from_secs(300);
    let mut step = rig.system.sim.now();
    while rig.system.sim.now() < deadline {
        step = step.saturating_add(SimDuration::from_millis(50));
        rig.system.sim.run_until(step);
        let len = rig
            .system
            .redirector(rig.rd)
            .controller()
            .chain(service(80))
            .map_or(0, <[IpAddr]>::len);
        if len == 1 {
            break;
        }
    }
    assert_eq!(
        rig.system
            .redirector(rig.rd)
            .controller()
            .chain(service(80))
            .unwrap(),
        &[HS1],
        "congested backup was not shed"
    );
    // Service resumes for the ongoing transfer: the client's own echo
    // stream completes (per-connection signal, immune to sink sharing).
    let mut step = rig.system.sim.now();
    while rig.system.sim.now() < deadline && sender.borrow().replies.data.len() < payload.len() {
        step = step.saturating_add(SimDuration::from_millis(50));
        rig.system.sim.run_until(step);
    }
    assert_eq!(
        sender.borrow().replies.data,
        payload,
        "service did not recover"
    );

    // Congestion clears; the operator re-commissions the backup.
    rig.system.sim.set_link_loss(backup_link, LossModel::None);
    let hs2 = rig.hs2;
    rig.system
        .sim
        .with_node_ctx::<HostServer, _>(hs2, |host, ctx| {
            host.register_now(
                ctx,
                service(80),
                DetectorParams::new(4, SimDuration::from_secs(30)),
            );
        });
    let rejoin_deadline = rig
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_secs(5));
    assert!(
        rig.system
            .wait_for_chain(rig.rd, service(80), 2, rejoin_deadline),
        "backup did not rejoin after congestion cleared"
    );
    assert_eq!(
        rig.system
            .redirector(rig.rd)
            .controller()
            .chain(service(80))
            .unwrap(),
        &[HS1, HS2]
    );

    // A new connection uses the restored chain end to end: its echo from
    // the gated primary only flows if the rejoined backup's ack-channel
    // reports do too.
    let payload2 = pattern(50_000);
    let replies2 = shared(SenderState::default());
    rig.system.connect_client(
        rig.client2,
        service(80),
        Box::new(StreamSenderApp::new(
            payload2.clone(),
            false,
            replies2.clone(),
        )),
    );
    let mut step = rig.system.sim.now();
    let deadline2 = rig
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_secs(60));
    while rig.system.sim.now() < deadline2 && replies2.borrow().replies.data.len() < payload2.len()
    {
        step = step.saturating_add(SimDuration::from_millis(20));
        rig.system.sim.run_until(step);
    }
    assert_eq!(
        replies2.borrow().replies.data,
        payload2,
        "new connection through the re-commissioned chain did not complete"
    );
}

#[test]
fn two_clients_share_a_failover() {
    // Both clients hold connections through the same crash; both streams
    // complete intact.
    let mut rig = build(true, 3);
    let p1 = pattern(250_000);
    let p2 = pattern(330_000);
    let r1 = shared(SenderState::default());
    let r2 = shared(SenderState::default());
    rig.system.connect_client(
        rig.client,
        service(80),
        Box::new(StreamSenderApp::new(p1.clone(), false, r1.clone())),
    );
    rig.system.connect_client(
        rig.client2,
        service(80),
        Box::new(StreamSenderApp::new(p2.clone(), false, r2.clone())),
    );
    let crash_at = rig
        .system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(60));
    rig.system.sim.schedule_crash(rig.hs1, crash_at);
    let deadline = SimTime::from_secs(180);
    let mut step = rig.system.sim.now();
    while rig.system.sim.now() < deadline {
        let done = r1.borrow().replies.data.len() >= p1.len()
            && r2.borrow().replies.data.len() >= p2.len();
        if done {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(50));
        rig.system.sim.run_until(step);
    }
    assert_eq!(r1.borrow().replies.data, p1, "client 1 stream");
    assert_eq!(r2.borrow().replies.data, p2, "client 2 stream");
    assert!(!r1.borrow().replies.reset && !r2.borrow().replies.reset);
}

#[test]
fn two_services_on_one_chain_fail_over_together() {
    // One crash, two replicated ports: both services reconfigure.
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(200),
        attempts: 2,
    });
    let client = b.add_client("c", CLIENT);
    let rd = b.add_redirector("rd", RD);
    let hs1 = b.add_host_server("hs1", HS1, RD);
    let hs2 = b.add_host_server("hs2", HS2, RD);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    let mut sinks = Vec::new();
    for (i, &hs) in [hs1, hs2].iter().enumerate() {
        for port in [80u16, 8080] {
            let sink = shared(SinkState::default());
            let mut spec = FtServiceSpec::new(service(port), vec![hs], detector);
            spec.registration_start = SimTime::from_millis(1 + 10 * i as u64);
            let s = sink.clone();
            b.deploy_ft_service(&spec, move |_q| Box::new(EchoApp::new(s.clone())));
            if i == 0 {
                sinks.push(sink); // primary-side sinks only
            }
        }
    }
    let mut system = b.build(4);
    assert!(system.wait_for_chain(rd, service(80), 2, SimTime::from_secs(2)));
    assert!(system.wait_for_chain(rd, service(8080), 2, SimTime::from_secs(2)));

    let pa = pattern(200_000);
    let pb = pattern(150_000);
    let ra = shared(SenderState::default());
    let rb = shared(SenderState::default());
    system.connect_client(
        client,
        service(80),
        Box::new(StreamSenderApp::new(pa.clone(), false, ra.clone())),
    );
    system.connect_client(
        client,
        service(8080),
        Box::new(StreamSenderApp::new(pb.clone(), false, rb.clone())),
    );
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(60));
    system.sim.schedule_crash(hs1, crash_at);
    let deadline = SimTime::from_secs(180);
    let mut step = system.sim.now();
    while system.sim.now() < deadline {
        if ra.borrow().replies.data.len() >= pa.len() && rb.borrow().replies.data.len() >= pb.len()
        {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(50));
        system.sim.run_until(step);
    }
    assert_eq!(ra.borrow().replies.data, pa, "service :80 stream");
    assert_eq!(rb.borrow().replies.data, pb, "service :8080 stream");
    assert_eq!(
        system
            .redirector(rd)
            .controller()
            .chain(service(80))
            .unwrap(),
        &[HS2]
    );
    assert_eq!(
        system
            .redirector(rd)
            .controller()
            .chain(service(8080))
            .unwrap(),
        &[HS2]
    );
}
