//! The paper's Figure 1, end to end: two ISPs (`southwest.net`,
//! `northeast.net`), each with its own redirector; the web service of
//! `www.northwest.com` **scaled** onto northeast's host server to diffuse
//! load; and `audio.south.com` **fault-tolerantly replicated** on two
//! hosts, surviving a failure mid-broadcast — all at once, all invisible to
//! the stock TCP clients.
//!
//! Run with: `cargo run --example figure1`

use hydranet::prelude::*;

const WWW_NORTHWEST: IpAddr = IpAddr::new(192, 20, 225, 20); // origin host
const AUDIO_SOUTH: IpAddr = IpAddr::new(193, 30, 1, 5); // virtual host (dark triangle)

fn main() {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(250),
        attempts: 2,
    });

    // ISP southwest.net
    let client_sw = b.add_client("client_sw", IpAddr::new(10, 1, 0, 1));
    let rd_sw_addr = IpAddr::new(10, 1, 9, 1);
    let rd_sw = b.add_redirector("rd_sw", rd_sw_addr);
    // ISP northeast.net
    let client_ne = b.add_client("client_ne", IpAddr::new(10, 2, 0, 1));
    let rd_ne_addr = IpAddr::new(10, 2, 9, 1);
    let rd_ne = b.add_redirector("rd_ne", rd_ne_addr);

    // Host servers: one in each ISP; both are available to the ft service.
    let hs_ne = b.add_host_server_multi(
        "hs_northeast",
        IpAddr::new(10, 2, 5, 1),
        vec![rd_sw_addr, rd_ne_addr],
    );
    let hs_sw = b.add_host_server_multi(
        "hs_southwest",
        IpAddr::new(10, 1, 5, 1),
        vec![rd_sw_addr, rd_ne_addr],
    );
    // The far-away origin host of www.northwest.com (ordinary server).
    let origin = b.add_client("www.northwest.com", WWW_NORTHWEST);

    let near = LinkParams::new(10_000_000, SimDuration::from_micros(300));
    let far = LinkParams::new(1_500_000, SimDuration::from_millis(25));
    b.link(client_sw, rd_sw, near.clone());
    b.link(client_ne, rd_ne, near.clone());
    b.link(
        rd_sw,
        rd_ne,
        LinkParams::new(45_000_000, SimDuration::from_millis(4)),
    );
    b.link(rd_ne, hs_ne, near.clone());
    b.link(rd_sw, hs_sw, near);
    b.link(rd_sw, origin, far); // the long haul to northwest.com

    // --- www.northwest.com: origin web server + scaled replica ----------
    let origin_served = shared(0u64);
    {
        let served = origin_served.clone();
        b.configure::<hydranet::core::host::ClientHost>(origin, move |host| {
            let served = served.clone();
            host.stack_mut().listen(80, move |_q| {
                Box::new(LineReplyApp::new(12_000, served.clone()))
            });
        });
    }
    // northeast.net hosts a replica of the web service near its clients.
    let replica_served = shared(0u64);
    {
        let served = replica_served.clone();
        b.deploy_scaled_service(
            rd_ne,
            SockAddr::new(WWW_NORTHWEST, 80),
            &[(hs_ne, 1)],
            move |_q| Box::new(LineReplyApp::new(12_000, served.clone())),
        );
    }
    // southwest.net has no replica: its redirector forwards to the origin.

    // --- audio.south.com: fault-tolerant broadcast service --------------
    const STREAM: usize = 1_000_000;
    let audio = SockAddr::new(AUDIO_SOUTH, 554);
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    for (i, &hs) in [hs_sw, hs_ne].iter().enumerate() {
        let mut spec = FtServiceSpec::new(audio, vec![hs], detector);
        spec.registration_start = SimTime::from_millis(1 + 25 * i as u64);
        b.deploy_ft_service(&spec, move |_q| {
            let frames: Vec<u8> = (0..STREAM).map(|i| (i % 249) as u8).collect();
            Box::new(StreamSenderApp::new(
                frames,
                false,
                shared(SenderState::default()),
            ))
        });
    }

    let mut system = b.build(17);
    assert!(system.wait_for_chain(rd_sw, audio, 2, SimTime::from_secs(2)));
    assert!(system.wait_for_chain(rd_ne, audio, 2, SimTime::from_secs(2)));

    // Client NE fetches web objects (served by the nearby replica) while
    // listening to the broadcast; client SW fetches from the origin.
    let web_ne = shared(RequestLoopState::default());
    system.connect_client(
        client_ne,
        SockAddr::new(WWW_NORTHWEST, 80),
        Box::new(RequestLoopApp::new(10, web_ne.clone())),
    );
    let web_sw = shared(RequestLoopState::default());
    system.connect_client(
        client_sw,
        SockAddr::new(WWW_NORTHWEST, 80),
        Box::new(RequestLoopApp::new(10, web_sw.clone())),
    );
    let listener = shared(SinkState::default());
    system.connect_client(client_ne, audio, Box::new(EchoApp::sink(listener.clone())));

    // Kill the audio primary mid-broadcast.
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(120));
    system.sim.schedule_crash(hs_sw, crash_at);

    let deadline = SimTime::from_secs(180);
    let mut step = system.sim.now();
    while system.sim.now() < deadline {
        let done = listener.borrow().len() >= STREAM
            && web_ne.borrow().completed >= 10
            && web_sw.borrow().completed >= 10;
        if done {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(25));
        system.sim.run_until(step);
    }

    println!(
        "northeast web exchanges: {} (replica served {}, origin served {})",
        web_ne.borrow().completed,
        *replica_served.borrow(),
        *origin_served.borrow()
    );
    println!("southwest web exchanges: {}", web_sw.borrow().completed);
    println!(
        "audio broadcast: {} / {STREAM} bytes, stall across fail-over: {}",
        listener.borrow().len(),
        listener
            .borrow()
            .max_gap_duration()
            .map_or("-".to_string(), |d| d.to_string())
    );
    assert_eq!(web_ne.borrow().completed, 10);
    assert_eq!(web_sw.borrow().completed, 10);
    assert_eq!(
        *replica_served.borrow(),
        10,
        "NE web should hit the replica"
    );
    assert_eq!(*origin_served.borrow(), 10, "SW web should hit the origin");
    assert_eq!(listener.borrow().len(), STREAM, "broadcast incomplete");
    let expected: Vec<u8> = (0..STREAM).map(|i| (i % 249) as u8).collect();
    assert_eq!(listener.borrow().data, expected, "broadcast corrupted");
    assert!(!listener.borrow().reset, "listener connection reset");
    println!("figure 1 scenario complete: scaling + fault tolerance, one internetwork");
}
