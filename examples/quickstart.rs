//! Quickstart: deploy a fault-tolerant echo service on two host servers,
//! talk to it over one ordinary TCP connection, then crash the primary
//! mid-conversation and watch the client finish without noticing.
//!
//! Run with: `cargo run --example quickstart`

use hydranet::prelude::*;

fn main() {
    // --- topology -------------------------------------------------------
    // client --- redirector --- host server 1 (primary)
    //                       \-- host server 2 (backup)
    let mut b = SystemBuilder::new(TcpConfig::default());
    let client = b.add_client("client", IpAddr::new(10, 0, 1, 1));
    let rd_addr = IpAddr::new(10, 9, 0, 1);
    let rd = b.add_redirector("redirector", rd_addr);
    let hs1 = b.add_host_server("hs1", IpAddr::new(10, 0, 2, 1), rd_addr);
    let hs2 = b.add_host_server("hs2", IpAddr::new(10, 0, 3, 1), rd_addr);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());

    // --- deploy the replicated service -----------------------------------
    // The service lives at a virtual-host address: no physical machine owns
    // 192.20.225.20 — both replicas answer for it (the paper's v_host).
    let service = SockAddr::new(IpAddr::new(192, 20, 225, 20), 7);
    let detector = DetectorParams::new(4, SimDuration::from_secs(30));
    let spec = FtServiceSpec::new(service, vec![hs1, hs2], detector);
    let seen = shared(SinkState::default());
    let handle = seen.clone();
    b.deploy_ft_service(&spec, move |_quad| Box::new(EchoApp::new(handle.clone())));

    let mut system = b.build(42);
    assert!(system.wait_for_chain(rd, service, 2, SimTime::from_secs(2)));
    println!(
        "chain formed: {:?}",
        system.redirector(rd).controller().chain(service).unwrap()
    );

    // --- client: one plain TCP connection --------------------------------
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    let replies = shared(SenderState::default());
    let app = StreamSenderApp::new(payload.clone(), false, replies.clone());
    system.connect_client(client, service, Box::new(app));

    // --- crash the primary mid-transfer -----------------------------------
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(60));
    system.sim.schedule_crash(hs1, crash_at);
    println!("primary hs1 will crash at {crash_at}");

    let deadline = SimTime::from_secs(120);
    let mut step = system.sim.now();
    while system.sim.now() < deadline {
        if replies.borrow().replies.data.len() >= payload.len() {
            break;
        }
        step = step.saturating_add(SimDuration::from_millis(50));
        system.sim.run_until(step);
    }

    // --- results ----------------------------------------------------------
    let st = replies.borrow();
    assert_eq!(
        st.replies.data, payload,
        "echo stream corrupted or incomplete"
    );
    println!(
        "client received the full {} byte echo at {} — connection never reset: {}",
        st.replies.data.len(),
        st.replies.last_byte_at.unwrap(),
        !st.replies.reset
    );
    if let Some(stall) = st.replies.max_gap_duration() {
        println!("largest client-visible stall during fail-over: {stall}");
    }
    println!(
        "surviving chain: {:?} (reconfigurations: {})",
        system.redirector(rd).controller().chain(service).unwrap(),
        system.redirector(rd).controller().reconfigurations()
    );
}
