//! A long-lived streaming session surviving a server failure — the paper's
//! live-broadcast scenario: "the video service serving potentially many
//! thousands of clients with live action must guarantee uninterrupted
//! broadcast" (§1).
//!
//! The replicated media service pushes a 2 MB "broadcast" down the
//! connection as fast as the client will take it. The streaming primary is
//! killed mid-broadcast; the promoted backup continues the byte stream at
//! the exact position the client had reached.
//!
//! Run with: `cargo run --example media_stream`

use hydranet::prelude::*;

const STREAM_BYTES: usize = 2_000_000;

fn main() {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(250),
        attempts: 2,
    });
    let client = b.add_client("viewer", IpAddr::new(10, 0, 1, 1));
    let rd_addr = IpAddr::new(10, 9, 0, 1);
    let rd = b.add_redirector("redirector", rd_addr);
    let hs1 = b.add_host_server("media1", IpAddr::new(10, 0, 2, 1), rd_addr);
    let hs2 = b.add_host_server("media2", IpAddr::new(10, 0, 3, 1), rd_addr);
    // A faster backbone: media servers get 100 Mb/s links.
    let fast = LinkParams::new(100_000_000, SimDuration::from_micros(200));
    b.link(client, rd, fast.clone());
    b.link(rd, hs1, fast.clone());
    b.link(rd, hs2, fast);

    // audio.south.com:554 — the dark triangle of Figure 1.
    let service = SockAddr::new(IpAddr::new(192, 20, 225, 21), 554);
    let spec = FtServiceSpec::new(
        service,
        vec![hs1, hs2],
        DetectorParams::new(4, SimDuration::from_secs(30)),
    );
    // The server app streams the broadcast once a viewer connects. Both
    // replicas generate the identical stream (deterministic service), so
    // the promoted backup continues seamlessly in the same TCP sequence
    // space.
    b.deploy_ft_service(&spec, move |_q| {
        let frames: Vec<u8> = (0..STREAM_BYTES).map(|i| (i % 251) as u8).collect();
        Box::new(StreamSenderApp::new(
            frames,
            false,
            shared(SenderState::default()),
        ))
    });
    let mut system = b.build(13);
    assert!(system.wait_for_chain(rd, service, 2, SimTime::from_secs(2)));

    // The viewer is a passive sink.
    let viewer = shared(SinkState::default());
    let app = EchoApp::sink(viewer.clone());
    system.connect_client(client, service, Box::new(app));

    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(100));
    system.sim.schedule_crash(hs1, crash_at);
    println!("media1 (streaming primary) dies at {crash_at}");

    let deadline = SimTime::from_secs(180);
    let mut step = system.sim.now();
    let mut at_crash = 0usize;
    while system.sim.now() < deadline && viewer.borrow().len() < STREAM_BYTES {
        step = step.saturating_add(SimDuration::from_millis(25));
        system.sim.run_until(step);
        if system.sim.now() <= crash_at {
            at_crash = viewer.borrow().len();
        }
    }

    let st = viewer.borrow();
    assert_eq!(st.len(), STREAM_BYTES, "broadcast incomplete");
    let expected: Vec<u8> = (0..STREAM_BYTES).map(|i| (i % 251) as u8).collect();
    assert_eq!(st.data, expected, "broadcast corrupted across fail-over");
    println!("bytes streamed when the primary died: {at_crash}");
    println!(
        "full {STREAM_BYTES} byte broadcast delivered intact by {}",
        st.last_byte_at.unwrap()
    );
    println!(
        "viewer-visible rebuffering gap: {}",
        st.max_gap_duration().unwrap()
    );
    assert!(!st.reset, "viewer connection reset");
    println!("viewer connection was never reset — fail-over fully transparent");
}
