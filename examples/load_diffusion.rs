//! HydraNet's original scaling mode (no fault tolerance): the Figure 1/2
//! scenario. A web service is replicated from its origin host onto a host
//! server near the clients; the redirector sends web traffic to the nearest
//! replica while *other* services of the same origin host (telnet in
//! Figure 2) pass through untouched.
//!
//! Run with: `cargo run --example load_diffusion`

use hydranet::core::host::ClientHost;
use hydranet::prelude::*;

fn main() {
    let origin_addr = IpAddr::new(192, 20, 225, 20);
    let mut b = SystemBuilder::new(TcpConfig::default());
    let client_a = b.add_client("clientA", IpAddr::new(128, 32, 33, 109));
    let client_b = b.add_client("clientB", IpAddr::new(128, 32, 33, 110));
    let rd_addr = IpAddr::new(10, 9, 0, 1);
    let rd = b.add_redirector("redirector", rd_addr);
    let host_server = b.add_host_server("hostserver", IpAddr::new(128, 142, 222, 80), rd_addr);
    // The origin host is an ordinary, unmodified server far away (slow,
    // long link).
    let origin = b.add_client("origin", origin_addr);
    let near = LinkParams::new(10_000_000, SimDuration::from_micros(300));
    let far = LinkParams::new(1_500_000, SimDuration::from_millis(20));
    b.link(client_a, rd, near.clone());
    b.link(client_b, rd, near.clone());
    b.link(rd, host_server, near);
    b.link(rd, origin, far);

    // The origin host serves both web (80) and telnet (23).
    let origin_web = shared(0u64);
    let origin_telnet = shared(0u64);
    {
        let web = origin_web.clone();
        let telnet = origin_telnet.clone();
        b.configure::<ClientHost>(origin, move |host| {
            let web = web.clone();
            host.stack_mut().listen(80, move |_q| {
                Box::new(LineReplyApp::new(16_000, web.clone()))
            });
            let telnet = telnet.clone();
            host.stack_mut().listen(23, move |_q| {
                Box::new(LineReplyApp::new(200, telnet.clone()))
            });
        });
    }

    // Build first, then install the scaled entry + replica (static
    // HydraNet-style installation: "dynamically, and transparently,
    // install replicas at strategic locations", §3).
    let replica_web = shared(0u64);
    let service = SockAddr::new(origin_addr, 80);
    {
        let replica_web = replica_web.clone();
        b.deploy_scaled_service(rd, service, &[(host_server, 1)], move |_q| {
            Box::new(LineReplyApp::new(16_000, replica_web.clone()))
        });
    }
    let mut system = b.build(3);

    // Client A fetches 20 web objects from 192.20.225.20:80.
    let web_session = shared(RequestLoopState::default());
    system.connect_client(
        client_a,
        service,
        Box::new(RequestLoopApp::new(20, web_session.clone())),
    );
    // Client B telnets to the *same address*, port 23.
    let telnet_session = shared(RequestLoopState::default());
    system.connect_client(
        client_b,
        SockAddr::new(origin_addr, 23),
        Box::new(RequestLoopApp::new(5, telnet_session.clone())),
    );

    system.sim.run_until(SimTime::from_secs(30));

    println!("client A web exchanges: {}", web_session.borrow().completed);
    println!(
        "client B telnet exchanges: {}",
        telnet_session.borrow().completed
    );
    println!(
        "web requests served by the nearby replica: {}",
        *replica_web.borrow()
    );
    println!(
        "web requests that reached the origin host:  {}",
        *origin_web.borrow()
    );
    println!(
        "telnet requests served by the origin host:  {}",
        *origin_telnet.borrow()
    );
    let stats = system.redirector(rd).engine().stats();
    println!(
        "redirector: {} packets redirected, {} forwarded untouched",
        stats.redirected, stats.forwarded
    );
    assert_eq!(web_session.borrow().completed, 20);
    assert_eq!(telnet_session.borrow().completed, 5);
    assert_eq!(*replica_web.borrow(), 20, "web not served by replica");
    assert_eq!(*origin_web.borrow(), 0, "web leaked to origin");
    assert_eq!(*origin_telnet.borrow(), 5, "telnet not served by origin");
}
