//! A session-style web workload across a fail-over — the paper's
//! motivating e-commerce scenario: "service interruptions for an on-line
//! brokerage firm may have very serious effects" (§1).
//!
//! A browser-like client performs 100 request/response exchanges over one
//! TCP connection. Halfway through, the primary web server dies. The
//! exchanges continue on the promoted backup; the client's TCP stack is
//! stock and never learns anything happened.
//!
//! Run with: `cargo run --example web_failover`

use hydranet::prelude::*;

const EXCHANGES: u32 = 100;
const BODY_BYTES: usize = 8_000;

fn main() {
    let mut b = SystemBuilder::new(TcpConfig::default());
    b.set_probe_params(ProbeParams {
        timeout: SimDuration::from_millis(250),
        attempts: 2,
    });
    let client = b.add_client("browser", IpAddr::new(10, 0, 1, 1));
    let rd_addr = IpAddr::new(10, 9, 0, 1);
    let rd = b.add_redirector("redirector", rd_addr);
    let hs1 = b.add_host_server("web1", IpAddr::new(10, 0, 2, 1), rd_addr);
    let hs2 = b.add_host_server("web2", IpAddr::new(10, 0, 3, 1), rd_addr);
    b.link(client, rd, LinkParams::default());
    b.link(rd, hs1, LinkParams::default());
    b.link(rd, hs2, LinkParams::default());

    // www.northwest.com:80, replicated on both web servers.
    let service = SockAddr::new(IpAddr::new(192, 20, 225, 20), 80);
    let served = shared(0u64);
    let spec = FtServiceSpec::new(
        service,
        vec![hs1, hs2],
        DetectorParams::new(4, SimDuration::from_secs(30)),
    );
    let served_handle = served.clone();
    b.deploy_ft_service(&spec, move |_q| {
        Box::new(LineReplyApp::new(BODY_BYTES, served_handle.clone()))
    });
    let mut system = b.build(7);
    assert!(system.wait_for_chain(rd, service, 2, SimTime::from_secs(2)));

    let session = shared(RequestLoopState::default());
    let app = RequestLoopApp::new(EXCHANGES, session.clone());
    system.connect_client(client, service, Box::new(app));

    // Let the session get going, then kill the primary.
    let crash_at = system
        .sim
        .now()
        .saturating_add(SimDuration::from_millis(150));
    system.sim.schedule_crash(hs1, crash_at);

    let deadline = SimTime::from_secs(180);
    let mut step = system.sim.now();
    let mut at_crash = None;
    while system.sim.now() < deadline && session.borrow().completed < EXCHANGES {
        step = step.saturating_add(SimDuration::from_millis(25));
        system.sim.run_until(step);
        if at_crash.is_none() && system.sim.now() >= crash_at {
            at_crash = Some(session.borrow().completed);
        }
    }

    let st = session.borrow();
    assert_eq!(st.completed, EXCHANGES, "session did not finish");
    assert!(!st.reset, "browser connection was reset");
    println!("exchanges completed: {} / {EXCHANGES}", st.completed);
    println!(
        "exchanges done when web1 crashed ({}): {}",
        crash_at,
        at_crash.unwrap_or(0)
    );
    // The fail-over shows up only as one slow exchange.
    let mut slowest = SimDuration::ZERO;
    let mut slowest_idx = 0;
    for (i, pair) in st.completion_times.windows(2).enumerate() {
        let gap = pair[1].duration_since(pair[0]);
        if gap > slowest {
            slowest = gap;
            slowest_idx = i + 1;
        }
    }
    println!("slowest exchange: #{slowest_idx} took {slowest} (the fail-over)");
    println!(
        "median-ish exchange time: {}",
        st.completion_times[EXCHANGES as usize / 2]
            .duration_since(st.completion_times[EXCHANGES as usize / 2 - 1])
    );
    println!("session finished at {}", system.sim.now());
}
