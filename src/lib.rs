//! # hydranet
//!
//! A faithful reproduction of **HydraNet-FT** (Shenoy, Satapati, Bettati —
//! *"HYDRANET-FT: Network Support for Dependable Services"*, ICDCS 2000):
//! client-transparent fault-tolerant TCP services over an internetwork.
//!
//! This facade crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`obs`] | unified telemetry: metrics registry, failover timeline, JSON export |
//! | [`netsim`] | deterministic discrete-event internetwork simulator |
//! | [`tcp`] | user-space TCP + ft-TCP (replicated ports, ack channel, failure estimator) |
//! | [`redirect`] | redirector tables, IP-in-IP tunnelling, request replication |
//! | [`mgmt`] | replica management protocol (registration, probing, reconfiguration) |
//! | [`core`] | assembled system: host servers, managed redirectors, deployment, scenarios |
//!
//! Start with [`core::system::SystemBuilder`] — see the `quickstart`
//! example and the crate-level example in [`core`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use hydranet_core as core;
pub use hydranet_mgmt as mgmt;
pub use hydranet_netsim as netsim;
pub use hydranet_obs as obs;
pub use hydranet_redirect as redirect;
pub use hydranet_tcp as tcp;

/// Everything a typical deployment needs, re-exported flat.
pub mod prelude {
    pub use hydranet_core::prelude::*;
}
